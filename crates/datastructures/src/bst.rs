//! A lock-free external (leaf-oriented) binary search tree with flag/mark descriptors and
//! helping, written against the Record Manager abstraction.
//!
//! The algorithm follows Ellen, Fatourou, Ruppert and van Breugel's non-blocking BST
//! (PODC 2010), which is the unbalanced ancestor of the balanced tree used in the paper's
//! experiments (see `DESIGN.md` for the substitution argument).  The properties relevant to
//! memory reclamation are identical:
//!
//! * all keys live in leaves; internal nodes are routing nodes;
//! * updates announce a *descriptor* (`IInfo`/`DInfo` record), flag the affected internal
//!   nodes by CAS-ing the descriptor into their `update` word, and can be **helped** to
//!   completion by any thread that encounters the flag;
//! * internal nodes are *marked* (via the same `update` word) before they are retired;
//! * searches never help and may traverse marked nodes — and, under epoch based
//!   reclamation, nodes that have already been retired — which is exactly the pattern that
//!   makes hazard pointers so difficult to apply (paper, Section 3).
//!
//! Descriptor reclamation uses a hand-off rule: the thread whose CAS replaces a node's
//! `update` word retires the descriptor referenced by the *previous* value of the word.
//!
//! # DEBRA+ integration
//!
//! Before an update's decision CAS, the records its completion phase will access (the
//! affected internal nodes, the victim leaf and the descriptor) are announced with
//! `RProtect`; after the decision CAS the operation runs to completion without
//! neutralization checkpoints, so a neutralized thread can always finish the bounded
//! completion phase safely (all records it touches are R-protected) and the operation's
//! effect happens exactly once.  Neutralization observed *before* the decision CAS simply
//! restarts the attempt.

use std::collections::HashSet;
use std::fmt;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use debra::{
    Allocator, AllocatorThread, Neutralized, Pool, Reclaimer, RecordManager, RecordManagerThread,
    RegistrationError,
};

use crate::ConcurrentMap;

/// Update-word states (low two bits of the packed `update` field).
const CLEAN: usize = 0;
const IFLAG: usize = 1;
const DFLAG: usize = 2;
const MARK: usize = 3;
const STATE_MASK: usize = 3;

#[inline]
fn pack(info: usize, state: usize) -> usize {
    debug_assert_eq!(info & STATE_MASK, 0);
    info | state
}

#[inline]
fn state_of(word: usize) -> usize {
    word & STATE_MASK
}

#[inline]
fn info_of(word: usize) -> usize {
    word & !STATE_MASK
}

/// Routing/leaf key: finite keys plus the two infinite sentinels of the EFRB tree.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum BstKey<K> {
    /// A real key.
    Finite(K),
    /// First sentinel (larger than every real key).
    Inf1,
    /// Second sentinel (larger than `Inf1`).
    Inf2,
}

/// What role a [`BstNode`] record currently plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeKind {
    Internal,
    Leaf,
    IInfo,
    DInfo,
}

/// A record of the external BST.
///
/// All four roles (internal node, leaf, insert descriptor, delete descriptor) share one
/// record type so that a single Record Manager serves the whole structure, exactly as a
/// single C++ record manager serves all record types of one data structure in the paper's
/// artifact.  Unused fields are simply left at their defaults for a given role.
pub struct BstNode<K, V> {
    kind: NodeKind,
    key: BstKey<K>,
    value: Option<V>,
    left: AtomicUsize,
    right: AtomicUsize,
    /// Packed `(descriptor pointer | state)` word; meaningful for internal nodes.
    update: AtomicUsize,
    // Descriptor fields (IInfo: p, l, new_internal; DInfo: gp, p, l, pupdate).
    d_gp: usize,
    d_p: usize,
    d_l: usize,
    d_new_internal: usize,
    d_pupdate: usize,
}

impl<K, V> BstNode<K, V> {
    fn internal(key: BstKey<K>, left: usize, right: usize) -> Self {
        BstNode {
            kind: NodeKind::Internal,
            key,
            value: None,
            left: AtomicUsize::new(left),
            right: AtomicUsize::new(right),
            update: AtomicUsize::new(pack(0, CLEAN)),
            d_gp: 0,
            d_p: 0,
            d_l: 0,
            d_new_internal: 0,
            d_pupdate: 0,
        }
    }

    fn leaf(key: BstKey<K>, value: Option<V>) -> Self {
        BstNode {
            kind: NodeKind::Leaf,
            key,
            value,
            left: AtomicUsize::new(0),
            right: AtomicUsize::new(0),
            update: AtomicUsize::new(pack(0, CLEAN)),
            d_gp: 0,
            d_p: 0,
            d_l: 0,
            d_new_internal: 0,
            d_pupdate: 0,
        }
    }

    fn iinfo(p: usize, l: usize, new_internal: usize) -> Self {
        BstNode {
            kind: NodeKind::IInfo,
            key: BstKey::Inf2,
            value: None,
            left: AtomicUsize::new(0),
            right: AtomicUsize::new(0),
            update: AtomicUsize::new(pack(0, CLEAN)),
            d_gp: 0,
            d_p: p,
            d_l: l,
            d_new_internal: new_internal,
            d_pupdate: 0,
        }
    }

    fn dinfo(gp: usize, p: usize, l: usize, pupdate: usize) -> Self {
        BstNode {
            kind: NodeKind::DInfo,
            key: BstKey::Inf2,
            value: None,
            left: AtomicUsize::new(0),
            right: AtomicUsize::new(0),
            update: AtomicUsize::new(pack(0, CLEAN)),
            d_gp: gp,
            d_p: p,
            d_l: l,
            d_new_internal: 0,
            d_pupdate: pupdate,
        }
    }
}

impl<K: fmt::Debug, V> fmt::Debug for BstNode<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BstNode").field("kind", &self.kind).field("key", &self.key).finish()
    }
}

/// Outcome of a tree search: the grandparent, parent and leaf on the search path, plus the
/// parent's and grandparent's update words at the time they were traversed.
struct SearchResult {
    gp: usize,
    p: usize,
    l: usize,
    pupdate: usize,
    gpupdate: usize,
}

/// Hazard pointer slot assignment (the BST needs 3 protection slots for the search path,
/// one for the descriptor when helping, and two pinning the descriptors referenced by the
/// search's `pupdate`/`gpupdate` words).
mod slots {
    pub const GP: usize = 0;
    pub const P: usize = 1;
    pub const L: usize = 2;
    pub const INFO: usize = 3;
    /// Descriptor referenced by the parent's update word at search time.
    pub const PINFO: usize = 4;
    /// Descriptor referenced by the grandparent's update word at search time.
    pub const GPINFO: usize = 5;
}

/// A lock-free external binary search tree implementing a set/map, parameterized by the
/// Record Manager (reclaimer `R`, pool `P`, allocator `A`).
pub struct ExternalBst<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<BstNode<K, V>>,
    P: Pool<BstNode<K, V>>,
    A: Allocator<BstNode<K, V>>,
{
    root: usize,
    domain: debra::Domain<BstNode<K, V>, R, P, A>,
    /// The three sentinel records allocated at construction (freed on drop).
    sentinels: [usize; 3],
}

/// Shorthand for the per-thread handle type used by [`ExternalBst`].
pub type BstHandle<K, V, R, P, A> = RecordManagerThread<BstNode<K, V>, R, P, A>;

impl<K, V, R, P, A> ExternalBst<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<BstNode<K, V>>,
    P: Pool<BstNode<K, V>>,
    A: Allocator<BstNode<K, V>>,
{
    /// Creates an empty tree backed by `manager`.
    pub fn new(manager: Arc<RecordManager<BstNode<K, V>, R, P, A>>) -> Self {
        Self::in_domain(debra::Domain::with_manager(manager))
    }

    /// Creates an empty tree backed by an existing [`debra::Domain`] (the safe-layer entry
    /// point: thread slots are leased automatically through the domain).
    pub fn in_domain(domain: debra::Domain<BstNode<K, V>, R, P, A>) -> Self {
        // The initial EFRB configuration: a root routing node with key Inf2 whose children
        // are the two sentinel leaves Inf1 and Inf2.
        let mut alloc = domain.manager().teardown_allocator();
        let leaf1 = alloc.allocate(BstNode::leaf(BstKey::Inf1, None)).as_ptr() as usize;
        let leaf2 = alloc.allocate(BstNode::leaf(BstKey::Inf2, None)).as_ptr() as usize;
        let root = alloc.allocate(BstNode::internal(BstKey::Inf2, leaf1, leaf2)).as_ptr() as usize;
        ExternalBst { root, domain, sentinels: [root, leaf1, leaf2] }
    }

    /// The Record Manager backing this tree.
    pub fn manager(&self) -> &Arc<RecordManager<BstNode<K, V>, R, P, A>> {
        self.domain.manager()
    }

    /// The reclamation domain backing this tree (safe-layer entry point; the operation
    /// bodies themselves still use the raw handle protocol).
    pub fn domain(&self) -> &debra::Domain<BstNode<K, V>, R, P, A> {
        &self.domain
    }

    /// Registers worker thread `tid`; see [`RecordManager::register`].
    pub fn register(&self, tid: usize) -> Result<BstHandle<K, V, R, P, A>, RegistrationError> {
        self.manager().register(tid)
    }

    /// Registers the lowest free thread slot (no manual `tid` bookkeeping); see
    /// [`RecordManager::register_auto`].
    pub fn register_auto(&self) -> Result<BstHandle<K, V, R, P, A>, RegistrationError> {
        self.manager().register_auto()
    }

    #[inline]
    fn node(&self, ptr: usize) -> &BstNode<K, V> {
        debug_assert!(ptr != 0);
        // SAFETY: callers only pass pointers obtained from the tree while the records are
        // protected by the calling operation (epoch / hazard pointer / RProtect), or during
        // teardown with exclusive access.
        unsafe { &*(ptr as *const BstNode<K, V>) }
    }

    /// EFRB `Search(k)`, restarting if hazard pointer validation fails.
    fn search(
        &self,
        handle: &mut BstHandle<K, V, R, P, A>,
        key: &K,
    ) -> Result<SearchResult, Neutralized> {
        'retry: loop {
            handle.check()?;
            let mut gp = 0usize;
            let mut gpupdate = pack(0, CLEAN);
            let mut p = 0usize;
            let mut pupdate = pack(0, CLEAN);
            let mut l = self.root;
            loop {
                handle.check()?;
                let l_ref = self.node(l);
                if l_ref.kind != NodeKind::Internal {
                    // Pin the descriptors referenced by the update words we return: the
                    // caller's decision CAS uses those words as expected values, and under
                    // a scheme that frees during our operation a reclaimed descriptor
                    // could be recycled *as a new descriptor at the same address*, letting
                    // a stale decision CAS succeed by ABA (a lost insert/delete).  The
                    // validation re-reads the word: if it is still installed, the
                    // descriptor has not yet been handed off for retirement.  No-ops under
                    // epoch schemes, whose non-quiescent announcement already pins it.
                    let p_info = info_of(pupdate);
                    if p_info != 0 {
                        let info_nn = NonNull::new(p_info as *mut BstNode<K, V>).expect("non-null");
                        let p_ref = self.node(p);
                        if !handle.protect(slots::PINFO, info_nn, || {
                            p_ref.update.load(Ordering::SeqCst) == pupdate
                        }) {
                            continue 'retry;
                        }
                    }
                    let gp_info = info_of(gpupdate);
                    if gp != 0 && gp_info != 0 {
                        let info_nn =
                            NonNull::new(gp_info as *mut BstNode<K, V>).expect("non-null");
                        let gp_ref = self.node(gp);
                        if !handle.protect(slots::GPINFO, info_nn, || {
                            gp_ref.update.load(Ordering::SeqCst) == gpupdate
                        }) {
                            continue 'retry;
                        }
                    }
                    return Ok(SearchResult { gp, p, l, pupdate, gpupdate });
                }
                gp = p;
                gpupdate = pupdate;
                p = l;
                pupdate = l_ref.update.load(Ordering::Acquire);
                let go_left = BstKey::Finite(key.clone()) < l_ref.key;
                let next = if go_left {
                    l_ref.left.load(Ordering::Acquire)
                } else {
                    l_ref.right.load(Ordering::Acquire)
                };
                if next == 0 {
                    // Can only happen if `l` was recycled under us (possible for a
                    // neutralized thread between checkpoints); restart defensively.
                    continue 'retry;
                }
                // Shift the protection window upward *before* announcing the next child:
                // `gp` is still covered by slot P and `p` by slot L while they are being
                // re-announced, so every node on the path stays continuously protected
                // (announcing `next` first would leave `p` unprotected for a moment, which
                // is a use-after-free window under hazard pointers).
                if gp != 0 {
                    let gp_nn =
                        NonNull::new(gp as *mut BstNode<K, V>).expect("non-null grandparent");
                    let _ = handle.protect(slots::GP, gp_nn, || true);
                }
                let p_nn = NonNull::new(p as *mut BstNode<K, V>).expect("non-null parent");
                let _ = handle.protect(slots::P, p_nn, || true);
                // Hazard-pointer protection of the node we are about to descend into.  The
                // validation must prove the child is not yet *retired*, and the parent's
                // child pointer alone cannot: a removed parent keeps its frozen child links,
                // and its leaf child is retired together with it without ever being
                // unlinked individually.  Every node is marked before it is retired, so
                // additionally requiring the parent to be unmarked rules that out — the
                // search restarts rather than traverse from a retired record (the
                // restriction the paper describes for HP-style schemes in Section 3).
                // No-op (always true) under epoch schemes.
                let child_link = if go_left { &l_ref.left } else { &l_ref.right };
                let next_nn = NonNull::new(next as *mut BstNode<K, V>).expect("non-null child");
                if !handle.protect(slots::L, next_nn, || {
                    state_of(l_ref.update.load(Ordering::SeqCst)) != MARK
                        && child_link.load(Ordering::SeqCst) == next
                }) {
                    continue 'retry;
                }
                l = next;
            }
        }
    }

    /// Retires the descriptor referenced by a just-replaced update word (hand-off rule).
    fn retire_info(&self, handle: &mut BstHandle<K, V, R, P, A>, old_word: usize) {
        let info = info_of(old_word);
        if info != 0 {
            // SAFETY: the caller's CAS replaced the only long-lived reference to this
            // descriptor (see the module docs for the hand-off argument); it is retired by
            // exactly one thread — the CAS winner.
            unsafe { handle.retire(NonNull::new_unchecked(info as *mut BstNode<K, V>)) };
        }
    }

    /// Helps the operation described by `word` (if any) to completion.  `holder` is the
    /// node whose `update` field the caller read `word` from; it is used to validate the
    /// descriptor's hazard pointer announcement before the descriptor is dereferenced.
    fn help(
        &self,
        handle: &mut BstHandle<K, V, R, P, A>,
        word: usize,
        holder: usize,
    ) -> Result<(), Neutralized> {
        handle.check()?;
        let info = info_of(word);
        if info == 0 || state_of(word) == CLEAN {
            return Ok(());
        }
        if handle.protection_slots() > 0 {
            // Schemes with per-access protection (hazard pointers) cannot safely help: the
            // completion phase dereferences the helpee's nodes (`d_p`, `d_gp`), which the
            // helper has no protection for and which may already be reclaimed — exactly the
            // retired-record traversal the paper says HP-style schemes cannot support
            // (Section 3).  Under those schemes the tree does not help; the caller backs
            // off and retries until the operation's owner completes it.  The yield keeps a
            // starved owner schedulable on oversubscribed machines (spinning retriers can
            // otherwise monopolize the cores for whole scheduling quanta).
            std::thread::yield_now();
            return Ok(());
        }
        // Protect the descriptor before dereferencing it: valid as long as the node we read
        // the flagged word from still carries it.
        let info_nn = NonNull::new(info as *mut BstNode<K, V>).expect("non-null descriptor");
        let holder_ref = self.node(holder);
        if !handle
            .protect(slots::INFO, info_nn, || holder_ref.update.load(Ordering::SeqCst) == word)
        {
            return Ok(());
        }
        // Defensive re-validation: if the descriptor has been recycled under a scheme whose
        // protection is best-effort (see the module docs on the HP restart policy), its
        // fields may no longer describe a live operation; skip helping in that case.
        let info_ref = self.node(info);
        let stale = match state_of(word) {
            IFLAG => info_ref.kind != NodeKind::IInfo || info_ref.d_p == 0 || info_ref.d_l == 0,
            DFLAG | MARK => {
                info_ref.kind != NodeKind::DInfo
                    || info_ref.d_p == 0
                    || info_ref.d_gp == 0
                    || info_ref.d_l == 0
            }
            _ => true,
        };
        if !stale {
            match state_of(word) {
                IFLAG => self.help_insert(handle, info),
                DFLAG => {
                    let _ = self.help_delete(handle, info);
                }
                MARK => self.help_marked(handle, info),
                _ => {}
            }
        }
        handle.unprotect(slots::INFO);
        Ok(())
    }

    /// EFRB `CAS-Child`: swings the child pointer of `parent` from `old` to `new`.
    fn cas_child(&self, parent: usize, old: usize, new: usize) {
        let parent_ref = self.node(parent);
        if parent_ref.left.load(Ordering::Acquire) == old {
            let _ = parent_ref.left.compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire);
        } else if parent_ref.right.load(Ordering::Acquire) == old {
            let _ =
                parent_ref.right.compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire);
        }
    }

    /// EFRB `HelpInsert`.
    fn help_insert(&self, handle: &mut BstHandle<K, V, R, P, A>, op: usize) {
        let _ = handle; // the handle is unused here but kept for signature symmetry
        let op_ref = self.node(op);
        self.cas_child(op_ref.d_p, op_ref.d_l, op_ref.d_new_internal);
        let p_ref = self.node(op_ref.d_p);
        let _ = p_ref.update.compare_exchange(
            pack(op, IFLAG),
            pack(op, CLEAN),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// EFRB `HelpDelete`; returns `true` if the delete operation described by `op`
    /// succeeded (now or earlier).
    fn help_delete(&self, handle: &mut BstHandle<K, V, R, P, A>, op: usize) -> bool {
        let op_ref = self.node(op);
        let p_ref = self.node(op_ref.d_p);
        let mark_word = pack(op, MARK);
        match p_ref.update.compare_exchange(
            op_ref.d_pupdate,
            mark_word,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                // This thread marked p: it owns the retirement of the descriptor that was
                // previously installed in p's update word.
                self.retire_info(handle, op_ref.d_pupdate);
                self.help_marked(handle, op);
                true
            }
            Err(current) => {
                if current == mark_word {
                    self.help_marked(handle, op);
                    true
                } else {
                    // The operation failed: back-track the grandparent's flag.
                    let gp_ref = self.node(op_ref.d_gp);
                    let _ = gp_ref.update.compare_exchange(
                        pack(op, DFLAG),
                        pack(op, CLEAN),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                    false
                }
            }
        }
    }

    /// EFRB `HelpMarked`: physically removes the marked parent and unflags the grandparent.
    fn help_marked(&self, handle: &mut BstHandle<K, V, R, P, A>, op: usize) {
        let _ = handle;
        let op_ref = self.node(op);
        let p_ref = self.node(op_ref.d_p);
        let left = p_ref.left.load(Ordering::Acquire);
        let sibling = if left == op_ref.d_l { p_ref.right.load(Ordering::Acquire) } else { left };
        self.cas_child(op_ref.d_gp, op_ref.d_p, sibling);
        let gp_ref = self.node(op_ref.d_gp);
        let _ = gp_ref.update.compare_exchange(
            pack(op, DFLAG),
            pack(op, CLEAN),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    fn insert_body(
        &self,
        handle: &mut BstHandle<K, V, R, P, A>,
        key: &K,
        value: &V,
    ) -> Result<bool, Neutralized> {
        loop {
            let s = self.search(handle, key)?;
            let l_ref = self.node(s.l);
            if l_ref.key == BstKey::Finite(key.clone()) {
                return Ok(false);
            }
            if state_of(s.pupdate) != CLEAN {
                self.help(handle, s.pupdate, s.p)?;
                continue;
            }

            // Build the new leaf and the new routing node.
            let new_leaf = handle
                .allocate(BstNode::leaf(BstKey::Finite(key.clone()), Some(value.clone())))
                .as_ptr() as usize;
            let new_key = BstKey::Finite(key.clone());
            let (left, right, routing_key) = if new_key < l_ref.key {
                (new_leaf, s.l, l_ref.key.clone())
            } else {
                (s.l, new_leaf, new_key)
            };
            let new_internal =
                handle.allocate(BstNode::internal(routing_key, left, right)).as_ptr() as usize;
            let op = handle.allocate(BstNode::iinfo(s.p, s.l, new_internal)).as_ptr() as usize;

            // DEBRA+ : protect everything the completion phase will touch, then decide.
            if handle.supports_crash_recovery() {
                for r in [s.p, s.l, new_internal, op] {
                    handle.r_protect(NonNull::new(r as *mut BstNode<K, V>).expect("non-null"));
                }
            }
            if let Err(e) = handle.check() {
                // Nothing published yet: recycle the fresh records and unwind to recovery.
                for r in [op, new_internal, new_leaf] {
                    // SAFETY: never made reachable.
                    unsafe { handle.deallocate(NonNull::new_unchecked(r as *mut BstNode<K, V>)) };
                }
                return Err(e);
            }

            let p_ref = self.node(s.p);
            match p_ref.update.compare_exchange(
                s.pupdate,
                pack(op, IFLAG),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // Decision CAS won: hand off the previous descriptor, complete, done.
                    self.retire_info(handle, s.pupdate);
                    self.help_insert(handle, op);
                    handle.r_unprotect_all();
                    return Ok(true);
                }
                Err(actual) => {
                    for r in [op, new_internal, new_leaf] {
                        // SAFETY: never made reachable (the decision CAS failed).
                        unsafe {
                            handle.deallocate(NonNull::new_unchecked(r as *mut BstNode<K, V>))
                        };
                    }
                    handle.r_unprotect_all();
                    self.help(handle, actual, s.p)?;
                    continue;
                }
            }
        }
    }

    fn remove_body(
        &self,
        handle: &mut BstHandle<K, V, R, P, A>,
        key: &K,
    ) -> Result<bool, Neutralized> {
        loop {
            let s = self.search(handle, key)?;
            let l_ref = self.node(s.l);
            if l_ref.key != BstKey::Finite(key.clone()) {
                return Ok(false);
            }
            if state_of(s.gpupdate) != CLEAN {
                self.help(handle, s.gpupdate, s.gp)?;
                continue;
            }
            if state_of(s.pupdate) != CLEAN {
                self.help(handle, s.pupdate, s.p)?;
                continue;
            }

            let op = handle.allocate(BstNode::dinfo(s.gp, s.p, s.l, s.pupdate)).as_ptr() as usize;

            if handle.supports_crash_recovery() {
                for r in [s.gp, s.p, s.l, op] {
                    handle.r_protect(NonNull::new(r as *mut BstNode<K, V>).expect("non-null"));
                }
            }
            if let Err(e) = handle.check() {
                // SAFETY: never made reachable.
                unsafe { handle.deallocate(NonNull::new_unchecked(op as *mut BstNode<K, V>)) };
                return Err(e);
            }

            let gp_ref = self.node(s.gp);
            match gp_ref.update.compare_exchange(
                s.gpupdate,
                pack(op, DFLAG),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.retire_info(handle, s.gpupdate);
                    if self.help_delete(handle, op) {
                        // This thread's operation removed the parent routing node and the
                        // victim leaf: it owns their retirement (exactly once).
                        // SAFETY: both records were unlinked by the delete that this thread
                        // owns and can no longer be reached by operations that start later.
                        unsafe {
                            handle.retire(NonNull::new_unchecked(s.p as *mut BstNode<K, V>));
                            handle.retire(NonNull::new_unchecked(s.l as *mut BstNode<K, V>));
                        }
                        handle.r_unprotect_all();
                        return Ok(true);
                    }
                    handle.r_unprotect_all();
                    continue;
                }
                Err(actual) => {
                    // SAFETY: never made reachable.
                    unsafe { handle.deallocate(NonNull::new_unchecked(op as *mut BstNode<K, V>)) };
                    handle.r_unprotect_all();
                    self.help(handle, actual, s.gp)?;
                    continue;
                }
            }
        }
    }

    fn get_body(
        &self,
        handle: &mut BstHandle<K, V, R, P, A>,
        key: &K,
    ) -> Result<Option<V>, Neutralized> {
        let s = self.search(handle, key)?;
        let l_ref = self.node(s.l);
        if l_ref.key == BstKey::Finite(key.clone()) {
            Ok(l_ref.value.clone())
        } else {
            Ok(None)
        }
    }

    fn run_op<Out>(
        &self,
        handle: &mut BstHandle<K, V, R, P, A>,
        mut body: impl FnMut(&Self, &mut BstHandle<K, V, R, P, A>) -> Result<Out, Neutralized>,
    ) -> Out {
        loop {
            let _ = handle.leave_qstate();
            match body(self, handle) {
                Ok(out) => {
                    handle.enter_qstate();
                    return out;
                }
                Err(Neutralized) => {
                    // Recovery: operations only unwind here *before* their decision CAS, so
                    // nothing needs helping — release the restricted hazard pointers,
                    // acknowledge the neutralization and retry.
                    handle.r_unprotect_all();
                    handle.begin_recovery();
                }
            }
        }
    }

    /// Number of keys currently in the tree (single-threaded diagnostic; walks the tree).
    pub fn len(&self, handle: &mut BstHandle<K, V, R, P, A>) -> usize {
        let _ = handle.leave_qstate();
        let mut count = 0;
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let r = self.node(n);
            match r.kind {
                NodeKind::Internal => {
                    stack.push(r.left.load(Ordering::Acquire));
                    stack.push(r.right.load(Ordering::Acquire));
                }
                NodeKind::Leaf => {
                    if matches!(r.key, BstKey::Finite(_)) {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
        handle.enter_qstate();
        count
    }

    /// Returns `true` if the tree holds no keys (diagnostic helper).
    pub fn is_empty(&self, handle: &mut BstHandle<K, V, R, P, A>) -> bool {
        self.len(handle) == 0
    }
}

impl<K, V, R, P, A> ConcurrentMap<K, V> for ExternalBst<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<BstNode<K, V>>,
    P: Pool<BstNode<K, V>>,
    A: Allocator<BstNode<K, V>>,
{
    type Handle = BstHandle<K, V, R, P, A>;

    fn register(&self, tid: usize) -> Result<Self::Handle, RegistrationError> {
        self.manager().register(tid)
    }

    fn insert(&self, handle: &mut Self::Handle, key: K, value: V) -> bool {
        self.run_op(handle, |this, h| this.insert_body(h, &key, &value))
    }

    fn remove(&self, handle: &mut Self::Handle, key: &K) -> bool {
        self.run_op(handle, |this, h| this.remove_body(h, key))
    }

    fn contains(&self, handle: &mut Self::Handle, key: &K) -> bool {
        self.run_op(handle, |this, h| this.get_body(h, key)).is_some()
    }

    fn get(&self, handle: &mut Self::Handle, key: &K) -> Option<V> {
        self.run_op(handle, |this, h| this.get_body(h, key))
    }
}

impl<K, V, R, P, A> Drop for ExternalBst<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<BstNode<K, V>>,
    P: Pool<BstNode<K, V>>,
    A: Allocator<BstNode<K, V>>,
{
    fn drop(&mut self) {
        // Free every node reachable from the root, plus the descriptors still referenced by
        // reachable update words (deduplicated: a delete descriptor can be referenced by
        // two nodes).  Records parked in limbo bags / pools are freed separately by the
        // Record Manager; the two sets are disjoint because a descriptor is only retired
        // when the word referencing it is overwritten.
        let mut alloc = self.manager().teardown_allocator();
        let mut infos: HashSet<usize> = HashSet::new();
        let mut stack = vec![self.root];
        let mut nodes: Vec<usize> = Vec::new();
        while let Some(n) = stack.pop() {
            if n == 0 {
                continue;
            }
            nodes.push(n);
            let r = self.node(n);
            if r.kind == NodeKind::Internal {
                stack.push(r.left.load(Ordering::Relaxed));
                stack.push(r.right.load(Ordering::Relaxed));
                let info = info_of(r.update.load(Ordering::Relaxed));
                if info != 0 {
                    infos.insert(info);
                }
            }
        }
        for n in nodes.into_iter().chain(infos) {
            // SAFETY: exclusive access during drop; each record freed exactly once (tree
            // nodes are uniquely reachable, descriptors were deduplicated above).
            unsafe { alloc.deallocate(NonNull::new_unchecked(n as *mut BstNode<K, V>)) };
        }
        let _ = self.sentinels;
    }
}

impl<K, V, R, P, A> fmt::Debug for ExternalBst<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<BstNode<K, V>>,
    P: Pool<BstNode<K, V>>,
    A: Allocator<BstNode<K, V>>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExternalBst").field("reclaimer", &R::name()).finish()
    }
}

// SAFETY: all shared mutable state is accessed through atomics; records are Send.
unsafe impl<K, V, R, P, A> Send for ExternalBst<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<BstNode<K, V>>,
    P: Pool<BstNode<K, V>>,
    A: Allocator<BstNode<K, V>>,
{
}
unsafe impl<K, V, R, P, A> Sync for ExternalBst<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<BstNode<K, V>>,
    P: Pool<BstNode<K, V>>,
    A: Allocator<BstNode<K, V>>,
{
}

#[cfg(test)]
mod tests {
    use super::*;
    use debra::{Debra, DebraPlus};
    use smr_alloc::{SystemAllocator, ThreadPool};
    use smr_baselines::HazardPointers;

    type Node = BstNode<u64, u64>;
    type DebraBst = ExternalBst<u64, u64, Debra<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
    type DebraPlusBst =
        ExternalBst<u64, u64, DebraPlus<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
    type HpBst =
        ExternalBst<u64, u64, HazardPointers<Node>, ThreadPool<Node>, SystemAllocator<Node>>;

    fn new_debra_bst(threads: usize) -> DebraBst {
        ExternalBst::new(Arc::new(RecordManager::new(threads)))
    }

    #[test]
    fn sequential_set_semantics() {
        let bst = new_debra_bst(1);
        let mut h = bst.register(0).unwrap();
        assert!(bst.is_empty(&mut h));
        assert!(bst.insert(&mut h, 10, 100));
        assert!(!bst.insert(&mut h, 10, 101));
        assert!(bst.insert(&mut h, 5, 50));
        assert!(bst.insert(&mut h, 20, 200));
        assert_eq!(bst.get(&mut h, &10), Some(100));
        assert_eq!(bst.get(&mut h, &5), Some(50));
        assert_eq!(bst.get(&mut h, &7), None);
        assert_eq!(bst.len(&mut h), 3);
        assert!(bst.remove(&mut h, &10));
        assert!(!bst.remove(&mut h, &10));
        assert!(!bst.contains(&mut h, &10));
        assert_eq!(bst.len(&mut h), 2);
        assert!(bst.remove(&mut h, &5));
        assert!(bst.remove(&mut h, &20));
        assert!(bst.is_empty(&mut h));
    }

    #[test]
    fn matches_a_sequential_model() {
        use std::collections::BTreeMap;
        let bst = new_debra_bst(1);
        let mut h = bst.register(0).unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..6000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = (x >> 33) % 128;
            match (x >> 61) % 3 {
                0 => assert_eq!(bst.insert(&mut h, key, key), model.insert(key, key).is_none()),
                1 => assert_eq!(bst.remove(&mut h, &key), model.remove(&key).is_some()),
                _ => assert_eq!(bst.contains(&mut h, &key), model.contains_key(&key)),
            }
        }
        assert_eq!(bst.len(&mut h), model.len());
        for k in model.keys() {
            assert!(bst.contains(&mut h, k));
        }
    }

    #[test]
    fn concurrent_disjoint_key_ranges() {
        let threads = 4;
        let per_thread = 2_000u64;
        let bst = Arc::new(new_debra_bst(threads));
        let mut joins = Vec::new();
        for t in 0..threads as u64 {
            let bst = Arc::clone(&bst);
            joins.push(std::thread::spawn(move || {
                let mut h = bst.register(t as usize).unwrap();
                let base = t * per_thread;
                for i in 0..per_thread {
                    assert!(bst.insert(&mut h, base + i, i));
                }
                for i in 0..per_thread {
                    assert!(bst.contains(&mut h, &(base + i)));
                }
                for i in (0..per_thread).step_by(2) {
                    assert!(bst.remove(&mut h, &(base + i)));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut h = bst.register(0).unwrap();
        assert_eq!(bst.len(&mut h), (threads as u64 * per_thread / 2) as usize);
    }

    #[test]
    fn concurrent_contended_small_keyrange_with_reclamation() {
        // High contention on a small key range forces constant node turnover, exercising
        // helping, descriptor hand-off and reclamation through the pool.
        let threads = 4;
        let bst = Arc::new(new_debra_bst(threads));
        let mut joins = Vec::new();
        for t in 0..threads {
            let bst = Arc::clone(&bst);
            joins.push(std::thread::spawn(move || {
                let mut h = bst.register(t).unwrap();
                let mut net: i64 = 0;
                let mut x: u64 = 0xABCD_0123 + t as u64;
                for _ in 0..10_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let k = (x >> 33) % 16;
                    if (x >> 62) & 1 == 0 {
                        if bst.insert(&mut h, k, k) {
                            net += 1;
                        }
                    } else if bst.remove(&mut h, &k) {
                        net -= 1;
                    }
                }
                net
            }));
        }
        let net: i64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        let mut h = bst.register(0).unwrap();
        assert_eq!(bst.len(&mut h) as i64, net);
        let stats = bst.manager().reclaimer().stats();
        assert!(stats.retired > 0, "deletes must retire nodes");
        assert!(stats.reclaimed > 0, "DEBRA must reclaim nodes during the run");
    }

    #[test]
    fn works_with_debra_plus_and_neutralization() {
        let threads = 3;
        let bst: Arc<DebraPlusBst> =
            Arc::new(ExternalBst::new(Arc::new(RecordManager::new(threads))));

        let mut joins = Vec::new();
        for t in 0..threads {
            let bst = Arc::clone(&bst);
            joins.push(std::thread::spawn(move || {
                let mut h = bst.register(t).unwrap();
                let mut x: u64 = 7 + t as u64;
                for i in 0..8_000u64 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let k = (x >> 33) % 64;
                    match i % 3 {
                        0 => {
                            bst.insert(&mut h, k, k);
                        }
                        1 => {
                            bst.remove(&mut h, &k);
                        }
                        _ => {
                            bst.contains(&mut h, &k);
                        }
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let stats = bst.manager().reclaimer().stats();
        assert!(stats.retired > 0);
        assert!(stats.reclaimed > 0);
    }

    #[test]
    fn works_with_hazard_pointers() {
        let threads = 3;
        let bst: Arc<HpBst> = Arc::new(ExternalBst::new(Arc::new(RecordManager::new(threads))));
        let mut joins = Vec::new();
        for t in 0..threads {
            let bst = Arc::clone(&bst);
            joins.push(std::thread::spawn(move || {
                let mut h = bst.register(t).unwrap();
                let base = (t as u64) * 1000;
                for i in 0..1000u64 {
                    assert!(bst.insert(&mut h, base + i, i));
                }
                for i in 0..1000u64 {
                    assert!(bst.contains(&mut h, &(base + i)));
                }
                for i in 0..1000u64 {
                    assert!(bst.remove(&mut h, &(base + i)));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut h = bst.register(0).unwrap();
        assert!(bst.is_empty(&mut h));
        assert!(bst.manager().reclaimer().stats().reclaimed > 0);
    }
}

//! A lock-free external (leaf-oriented) binary search tree with flag/mark descriptors and
//! helping, written against the **safe guard layer** of the Record Manager abstraction.
//!
//! The algorithm follows Ellen, Fatourou, Ruppert and van Breugel's non-blocking BST
//! (PODC 2010), which is the unbalanced ancestor of the balanced tree used in the paper's
//! experiments (see `DESIGN.md` for the substitution argument).  The properties relevant to
//! memory reclamation are identical:
//!
//! * all keys live in leaves; internal nodes are routing nodes;
//! * updates announce a *descriptor* (`IInfo`/`DInfo` record), flag the affected internal
//!   nodes by CAS-ing the descriptor into their `update` word, and can be **helped** to
//!   completion by any thread that encounters the flag;
//! * internal nodes are *marked* (via the same `update` word) before they are retired;
//! * searches never help and may traverse marked nodes — and, under epoch based
//!   reclamation, nodes that have already been retired — which is exactly the pattern that
//!   makes hazard pointers so difficult to apply (paper, Section 3).
//!
//! Descriptor reclamation uses a hand-off rule: the thread whose CAS replaces a node's
//! `update` word retires the descriptor referenced by the *previous* value of the word.
//!
//! # The safe-layer rendition
//!
//! The tree contains no hand-rolled protection code:
//!
//! * the search descends with a six-role [`ShieldSet`] — grandparent/parent/leaf for the
//!   path window plus three descriptor roles.  Shifting the window down one level is
//!   [`ShieldSet::rotate`]`([GP, P, L])`: the records that stay in the window stay
//!   continuously protected with **no re-announcement** (the property the raw code
//!   maintained by carefully ordered `protect` calls), and only the new child is announced
//!   and validated, via [`ShieldSet::protect_loaded_unless`] with the "parent is not
//!   marked" invariant conjoined — a removed parent keeps its frozen child links, so the link
//!   validation alone cannot prove the child unretired;
//! * the packed `update` word (`descriptor pointer | state`) is an [`Atomic`] whose tag
//!   bits carry the EFRB state; descriptors are pinned with [`ShieldSet::protect_word`],
//!   the tagged-word protect whose validation is "the word is still installed" (the
//!   hand-off rule guarantees an installed descriptor is unretired);
//! * the helping policy is the safe [`Guard::helping_allowed`] hook: schemes that
//!   validate their accesses (hazard pointers, ThreadScan, IBR) must not dereference
//!   the helpee's records, so the tree backs off (with a yield) instead of helping —
//!   see the hook's docs for why the seed's `protection_slots() > 0` gate (which let
//!   IBR help) corrupted the tree;
//! * retirement goes through the safe [`Guard::retire`] at the unique hand-off/unlink
//!   points.
//!
//! # DEBRA+ integration
//!
//! Before an update's decision CAS, the records its completion phase will access (the
//! affected internal nodes, the victim leaf and the descriptor) are announced in a
//! per-attempt [`Recovery`](debra::Recovery) scope (the RAII rendition of
//! `RProtect`/`RUnprotectAll`); after the decision CAS the operation runs to completion
//! without neutralization checkpoints, so a neutralized thread can always finish the
//! bounded completion phase safely and the operation's effect happens exactly once.
//! Neutralization observed *before* the decision CAS unwinds the attempt with
//! [`Restart`], dropping the scope — which releases the restricted protections — and
//! restarts.

use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use debra::{
    Allocator, Atomic, Domain, DomainHandle, Guard, Pool, Reclaimer, RecordManager,
    RegistrationError, Restart, Shared, ShieldSet,
};

use crate::ConcurrentMap;

/// Update-word states, carried in the tag bits of the packed `update` link
/// (`descriptor pointer | state`).
const CLEAN: usize = 0;
/// See [`CLEAN`].
const IFLAG: usize = 1;
/// See [`CLEAN`].
const DFLAG: usize = 2;
/// See [`CLEAN`].
const MARK: usize = 3;

/// Routing/leaf key: finite keys plus the two infinite sentinels of the EFRB tree.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum BstKey<K> {
    /// A real key.
    Finite(K),
    /// First sentinel (larger than every real key).
    Inf1,
    /// Second sentinel (larger than `Inf1`).
    Inf2,
}

impl<K: Ord> BstKey<K> {
    /// `true` if the search key `key` routes left of this routing key (every finite key
    /// is smaller than the sentinels).  By-reference: the comparison runs at every level
    /// of every descent, and cloning the key there would put an allocation on the hot
    /// path for heap-backed key types.
    #[inline]
    fn finite_less(&self, key: &K) -> bool {
        match self {
            BstKey::Finite(k) => key < k,
            BstKey::Inf1 | BstKey::Inf2 => true,
        }
    }

    /// `true` if this key is exactly the finite key `key` (sentinels never match).
    #[inline]
    fn is_finite(&self, key: &K) -> bool {
        matches!(self, BstKey::Finite(k) if k == key)
    }
}

/// What role a [`BstNode`] record currently plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeKind {
    Internal,
    Leaf,
    IInfo,
    DInfo,
}

/// A record of the external BST.
///
/// All four roles (internal node, leaf, insert descriptor, delete descriptor) share one
/// record type so that a single Record Manager serves the whole structure, exactly as a
/// single C++ record manager serves all record types of one data structure in the paper's
/// artifact.  Unused fields are simply left at their defaults for a given role.  The
/// descriptor fields (`d_*`) are written once before the descriptor is published and never
/// change afterwards.
pub struct BstNode<K, V> {
    kind: NodeKind,
    key: BstKey<K>,
    value: Option<V>,
    left: Atomic<BstNode<K, V>>,
    right: Atomic<BstNode<K, V>>,
    /// Packed `(descriptor pointer | state)` word; meaningful for internal nodes.
    update: Atomic<BstNode<K, V>>,
    // Descriptor fields (IInfo: p, l, new_internal; DInfo: gp, p, l, pupdate).
    d_gp: Atomic<BstNode<K, V>>,
    d_p: Atomic<BstNode<K, V>>,
    d_l: Atomic<BstNode<K, V>>,
    d_new_internal: Atomic<BstNode<K, V>>,
    /// The parent's update word observed by the delete's search (pointer *and* state).
    d_pupdate: Atomic<BstNode<K, V>>,
}

impl<K, V> BstNode<K, V> {
    fn internal(key: BstKey<K>, left: Shared<'_, Self>, right: Shared<'_, Self>) -> Self {
        BstNode {
            kind: NodeKind::Internal,
            key,
            value: None,
            left: Atomic::from_shared(left),
            right: Atomic::from_shared(right),
            update: Atomic::null(),
            d_gp: Atomic::null(),
            d_p: Atomic::null(),
            d_l: Atomic::null(),
            d_new_internal: Atomic::null(),
            d_pupdate: Atomic::null(),
        }
    }

    fn leaf(key: BstKey<K>, value: Option<V>) -> Self {
        BstNode {
            kind: NodeKind::Leaf,
            key,
            value,
            left: Atomic::null(),
            right: Atomic::null(),
            update: Atomic::null(),
            d_gp: Atomic::null(),
            d_p: Atomic::null(),
            d_l: Atomic::null(),
            d_new_internal: Atomic::null(),
            d_pupdate: Atomic::null(),
        }
    }

    fn iinfo(p: Shared<'_, Self>, l: Shared<'_, Self>, new_internal: Shared<'_, Self>) -> Self {
        BstNode {
            kind: NodeKind::IInfo,
            key: BstKey::Inf2,
            value: None,
            left: Atomic::null(),
            right: Atomic::null(),
            update: Atomic::null(),
            d_gp: Atomic::null(),
            d_p: Atomic::from_shared(p),
            d_l: Atomic::from_shared(l),
            d_new_internal: Atomic::from_shared(new_internal),
            d_pupdate: Atomic::null(),
        }
    }

    fn dinfo(
        gp: Shared<'_, Self>,
        p: Shared<'_, Self>,
        l: Shared<'_, Self>,
        pupdate: Shared<'_, Self>,
    ) -> Self {
        BstNode {
            kind: NodeKind::DInfo,
            key: BstKey::Inf2,
            value: None,
            left: Atomic::null(),
            right: Atomic::null(),
            update: Atomic::null(),
            d_gp: Atomic::from_shared(gp),
            d_p: Atomic::from_shared(p),
            d_l: Atomic::from_shared(l),
            d_new_internal: Atomic::null(),
            d_pupdate: Atomic::from_shared(pupdate),
        }
    }
}

impl<K: fmt::Debug, V> fmt::Debug for BstNode<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BstNode").field("kind", &self.kind).field("key", &self.key).finish()
    }
}

/// Outcome of a tree search: the grandparent, parent and leaf on the search path, plus
/// the parent's and grandparent's update words (pointer and state tag) at the time they
/// were traversed.  On return all three path records — and the descriptors referenced by
/// the returned update words — are still protected by the caller-supplied [`ShieldSet`].
struct SearchResult<'g, K, V> {
    /// Null when the leaf hangs directly off the root's parent position.
    gp: Shared<'g, BstNode<K, V>>,
    p: Shared<'g, BstNode<K, V>>,
    l: Shared<'g, BstNode<K, V>>,
    pupdate: Shared<'g, BstNode<K, V>>,
    gpupdate: Shared<'g, BstNode<K, V>>,
}

/// Protection role assignment of the six-role [`ShieldSet`] (three for the search-path
/// window, one for the descriptor when helping, and two pinning the descriptors
/// referenced by the search's `pupdate`/`gpupdate` words).
mod roles {
    pub const GP: usize = 0;
    pub const P: usize = 1;
    pub const L: usize = 2;
    pub const INFO: usize = 3;
    /// Descriptor referenced by the parent's update word at search time.
    pub const PINFO: usize = 4;
    /// Descriptor referenced by the grandparent's update word at search time.
    pub const GPINFO: usize = 5;
}

/// A lock-free external binary search tree implementing a set/map, parameterized by the
/// Record Manager (reclaimer `R`, pool `P`, allocator `A`) through a [`Domain`].
pub struct ExternalBst<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<BstNode<K, V>>,
    P: Pool<BstNode<K, V>>,
    A: Allocator<BstNode<K, V>>,
{
    /// The root routing node, installed at construction and never replaced.
    root: Atomic<BstNode<K, V>>,
    domain: Domain<BstNode<K, V>, R, P, A>,
}

/// Shorthand for the per-thread handle type used by [`ExternalBst`]: a domain lease that
/// pins guards without per-operation registry lookups.  Obtained with
/// [`ConcurrentMap::register`] and usable only on the thread that created it.
pub type BstHandle<K, V, R, P, A> = DomainHandle<BstNode<K, V>, R, P, A>;

/// Shorthand for the guard type of [`ExternalBst`] operations.
pub type BstGuard<K, V, R, P, A> = Guard<BstNode<K, V>, R, P, A>;

/// Shorthand for the six-role shield set of a BST operation.
type BstShields<'g, K, V, R, P, A> = ShieldSet<'g, 6, BstNode<K, V>, R, P, A>;

impl<K, V, R, P, A> ExternalBst<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<BstNode<K, V>>,
    P: Pool<BstNode<K, V>>,
    A: Allocator<BstNode<K, V>>,
{
    /// Creates an empty tree backed by `manager`.
    pub fn new(manager: Arc<RecordManager<BstNode<K, V>, R, P, A>>) -> Self {
        Self::in_domain(Domain::with_manager(manager))
    }

    /// Creates an empty tree backed by an existing [`Domain`] (sharing its thread
    /// leases).  Briefly leases a slot on the constructing thread to allocate the
    /// initial EFRB configuration: a root routing node with key `Inf2` whose children
    /// are the two sentinel leaves `Inf1` and `Inf2`.
    pub fn in_domain(domain: Domain<BstNode<K, V>, R, P, A>) -> Self {
        let root = {
            let guard = domain.pin();
            let leaf1 = guard.alloc(BstNode::leaf(BstKey::Inf1, None));
            let leaf2 = guard.alloc(BstNode::leaf(BstKey::Inf2, None));
            let root = guard.alloc(BstNode::internal(BstKey::Inf2, leaf1.shared(), leaf2.shared()));
            // The leaves are now owned by the root's links; consuming the `Owned`s
            // without discarding is the ownership transfer.
            let (_, _) = (leaf1, leaf2);
            Atomic::from_owned(root)
        };
        ExternalBst { root, domain }
    }

    /// The Record Manager backing this tree.
    pub fn manager(&self) -> &Arc<RecordManager<BstNode<K, V>, R, P, A>> {
        self.domain.manager()
    }

    /// The reclamation domain backing this tree.
    pub fn domain(&self) -> &Domain<BstNode<K, V>, R, P, A> {
        &self.domain
    }

    /// Leases a per-thread handle; see [`ConcurrentMap::register`] (slots are leased
    /// automatically through the domain — no manual `tid` bookkeeping).
    pub fn register(&self) -> Result<BstHandle<K, V, R, P, A>, RegistrationError> {
        self.domain.try_handle()
    }

    /// EFRB `Search(k)`, restarting if a protection validation fails.
    ///
    /// The descent keeps the grandparent → parent → child window continuously protected
    /// by rotating the three path roles (no re-announcement) and announcing only the new
    /// child, validated against both the parent's child link *and* the parent's
    /// unmarked-ness — a removed parent keeps its frozen child links, and its leaf child
    /// is retired together with it without ever being unlinked individually, so the link
    /// check alone would validate a retired child (the restriction the paper describes
    /// for HP-style schemes in Section 3).  At the leaf, the descriptors referenced by
    /// the update words we return are pinned (roles `PINFO`/`GPINFO`): the caller's
    /// decision CAS uses those words as expected values, and a reclaimed descriptor
    /// could be recycled *as a new descriptor at the same address*, letting a stale
    /// decision CAS succeed by ABA (a lost insert/delete).  The validation re-reads the
    /// word: if it is still installed, the descriptor has not yet been handed off for
    /// retirement.  All of it no-ops under epoch schemes, whose non-quiescent
    /// announcement already pins every record.
    fn search<'g>(
        &self,
        guard: &'g BstGuard<K, V, R, P, A>,
        set: &mut BstShields<'g, K, V, R, P, A>,
        key: &K,
    ) -> Result<SearchResult<'g, K, V>, Restart> {
        'retry: loop {
            guard.check()?;
            let mut gp: Shared<'g, BstNode<K, V>> = Shared::null();
            let mut gpupdate: Shared<'g, BstNode<K, V>> = Shared::null();
            let mut p: Shared<'g, BstNode<K, V>> = Shared::null();
            let mut pupdate: Shared<'g, BstNode<K, V>> = Shared::null();
            let mut l = self.root.load(Ordering::Acquire, guard);
            loop {
                let l_ref = l.as_ref().expect("path nodes are non-null");
                if l_ref.kind != NodeKind::Internal {
                    if !pupdate.with_tag(0).is_null() {
                        let p_ref = p.as_ref().expect("parent of a leaf is non-null");
                        if set.protect_word(roles::PINFO, &p_ref.update, pupdate).is_err() {
                            continue 'retry;
                        }
                    }
                    if !gp.is_null() && !gpupdate.with_tag(0).is_null() {
                        let gp_ref = gp.as_ref().expect("checked non-null");
                        if set.protect_word(roles::GPINFO, &gp_ref.update, gpupdate).is_err() {
                            continue 'retry;
                        }
                    }
                    return Ok(SearchResult { gp, p, l, pupdate, gpupdate });
                }
                gp = p;
                gpupdate = pupdate;
                p = l;
                pupdate = l_ref.update.load(Ordering::Acquire, guard);
                let go_left = l_ref.key.finite_less(key);
                let child_link = if go_left { &l_ref.left } else { &l_ref.right };
                let next = child_link.load(Ordering::Acquire, guard);
                if next.is_null() {
                    continue 'retry;
                }
                // Shift the protection window down one level *before* announcing the
                // child: the rotation keeps `gp` (role P's old slot) and `p` (role L's
                // old slot) continuously protected — no moment of unprotection, no
                // re-announcement — and hands role L the freed slot for the new child.
                set.rotate([roles::GP, roles::P, roles::L]);
                let Ok(next) =
                    set.protect_loaded_unless(roles::L, child_link, next, &l_ref.update, MARK)
                else {
                    continue 'retry;
                };
                l = next;
            }
        }
    }

    /// Retires the descriptor referenced by a just-replaced update word (hand-off rule):
    /// the caller's CAS replaced the only long-lived reference to this descriptor (see
    /// the module docs), so it is retired by exactly one thread — the CAS winner.
    fn retire_info(&self, guard: &BstGuard<K, V, R, P, A>, old_word: Shared<'_, BstNode<K, V>>) {
        let info = old_word.with_tag(0);
        if !info.is_null() {
            guard.retire(info);
        }
    }

    /// Helps the operation described by `word` (if any) to completion.  `holder` is the
    /// node whose `update` field the caller read `word` from; it is used to validate the
    /// descriptor's protection announcement before the descriptor is dereferenced.
    fn help(
        &self,
        guard: &BstGuard<K, V, R, P, A>,
        set: &mut BstShields<'_, K, V, R, P, A>,
        word: Shared<'_, BstNode<K, V>>,
        holder: Shared<'_, BstNode<K, V>>,
    ) -> Result<(), Restart> {
        guard.check()?;
        if word.with_tag(0).is_null() || word.tag() == CLEAN {
            return Ok(());
        }
        if !guard.helping_allowed() {
            // Schemes that validate their accesses (hazard pointers, ThreadScan, IBR)
            // cannot safely help: the completion phase dereferences the helpee's nodes
            // (`d_p`, `d_gp`) through descriptor fields, which the helper has no
            // protection for, which admit no validating read, and which may already be
            // reclaimed — exactly the retired-record traversal the paper says such
            // schemes cannot support (Section 3).  Under those schemes the tree does
            // not help;
            // the caller backs off and retries until the operation's owner completes it.
            // The yield keeps a starved owner schedulable on oversubscribed machines
            // (spinning retriers can otherwise monopolize the cores for whole
            // scheduling quanta).
            std::thread::yield_now();
            return Ok(());
        }
        // Protect the descriptor before dereferencing it: valid as long as the node we
        // read the flagged word from still carries it.  A failed validation means the
        // operation moved on — nothing to help.
        let holder_ref = holder.as_ref().expect("holder is non-null");
        let Ok(_) = set.protect_word(roles::INFO, &holder_ref.update, word) else {
            return Ok(());
        };
        let info = word.with_tag(0);
        // Defensive re-validation: if the descriptor has been recycled under a scheme
        // whose protection is best-effort (see the module docs on the HP restart
        // policy), its fields may no longer describe a live operation; skip helping in
        // that case.
        let info_ref = info.as_ref().expect("flagged update word references a descriptor");
        let stale = match word.tag() {
            IFLAG => {
                info_ref.kind != NodeKind::IInfo
                    || info_ref.d_p.load_ptr(Ordering::Relaxed).is_null()
                    || info_ref.d_l.load_ptr(Ordering::Relaxed).is_null()
            }
            DFLAG | MARK => {
                info_ref.kind != NodeKind::DInfo
                    || info_ref.d_p.load_ptr(Ordering::Relaxed).is_null()
                    || info_ref.d_gp.load_ptr(Ordering::Relaxed).is_null()
                    || info_ref.d_l.load_ptr(Ordering::Relaxed).is_null()
            }
            _ => true,
        };
        if !stale {
            match word.tag() {
                IFLAG => self.help_insert(guard, info),
                DFLAG => {
                    let _ = self.help_delete(guard, info);
                }
                MARK => self.help_marked(guard, info),
                _ => {}
            }
        }
        set.release(roles::INFO);
        Ok(())
    }

    /// EFRB `CAS-Child`: swings the child pointer of `parent` from `old` to `new`.
    fn cas_child(
        &self,
        guard: &BstGuard<K, V, R, P, A>,
        parent: Shared<'_, BstNode<K, V>>,
        old: Shared<'_, BstNode<K, V>>,
        new: Shared<'_, BstNode<K, V>>,
    ) {
        let parent_ref = parent.as_ref().expect("parent is non-null");
        if parent_ref.left.load(Ordering::Acquire, guard) == old {
            let _ = parent_ref.left.compare_exchange(
                old,
                new,
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            );
        } else if parent_ref.right.load(Ordering::Acquire, guard) == old {
            let _ = parent_ref.right.compare_exchange(
                old,
                new,
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            );
        }
    }

    /// EFRB `HelpInsert`.  The descriptor fields are immutable after publication, so the
    /// relaxed loads are ordered by the acquire that read the flagged update word.
    fn help_insert(&self, guard: &BstGuard<K, V, R, P, A>, op: Shared<'_, BstNode<K, V>>) {
        let op_ref = op.as_ref().expect("descriptor is non-null");
        let d_p = op_ref.d_p.load(Ordering::Relaxed, guard);
        let d_l = op_ref.d_l.load(Ordering::Relaxed, guard);
        let d_new_internal = op_ref.d_new_internal.load(Ordering::Relaxed, guard);
        self.cas_child(guard, d_p, d_l, d_new_internal);
        let p_ref = d_p.as_ref().expect("descriptor parent is non-null");
        let _ = p_ref.update.compare_exchange(
            op.with_tag(IFLAG),
            op.with_tag(CLEAN),
            Ordering::AcqRel,
            Ordering::Acquire,
            guard,
        );
    }

    /// EFRB `HelpDelete`; returns `true` if the delete operation described by `op`
    /// succeeded (now or earlier).
    fn help_delete(&self, guard: &BstGuard<K, V, R, P, A>, op: Shared<'_, BstNode<K, V>>) -> bool {
        let op_ref = op.as_ref().expect("descriptor is non-null");
        let d_p = op_ref.d_p.load(Ordering::Relaxed, guard);
        let d_pupdate = op_ref.d_pupdate.load(Ordering::Relaxed, guard);
        let p_ref = d_p.as_ref().expect("descriptor parent is non-null");
        let mark_word = op.with_tag(MARK);
        match p_ref.update.compare_exchange(
            d_pupdate,
            mark_word,
            Ordering::AcqRel,
            Ordering::Acquire,
            guard,
        ) {
            Ok(()) => {
                // This thread marked p: it owns the retirement of the descriptor that
                // was previously installed in p's update word.
                self.retire_info(guard, d_pupdate);
                self.help_marked(guard, op);
                true
            }
            Err(current) => {
                if current == mark_word {
                    self.help_marked(guard, op);
                    true
                } else {
                    // The operation failed: back-track the grandparent's flag.
                    let d_gp = op_ref.d_gp.load(Ordering::Relaxed, guard);
                    let gp_ref = d_gp.as_ref().expect("descriptor grandparent is non-null");
                    let _ = gp_ref.update.compare_exchange(
                        op.with_tag(DFLAG),
                        op.with_tag(CLEAN),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    );
                    false
                }
            }
        }
    }

    /// EFRB `HelpMarked`: physically removes the marked parent and unflags the
    /// grandparent.
    fn help_marked(&self, guard: &BstGuard<K, V, R, P, A>, op: Shared<'_, BstNode<K, V>>) {
        let op_ref = op.as_ref().expect("descriptor is non-null");
        let d_p = op_ref.d_p.load(Ordering::Relaxed, guard);
        let d_l = op_ref.d_l.load(Ordering::Relaxed, guard);
        let d_gp = op_ref.d_gp.load(Ordering::Relaxed, guard);
        let p_ref = d_p.as_ref().expect("descriptor parent is non-null");
        let left = p_ref.left.load(Ordering::Acquire, guard);
        let sibling = if left == d_l { p_ref.right.load(Ordering::Acquire, guard) } else { left };
        self.cas_child(guard, d_gp, d_p, sibling);
        let gp_ref = d_gp.as_ref().expect("descriptor grandparent is non-null");
        let _ = gp_ref.update.compare_exchange(
            op.with_tag(DFLAG),
            op.with_tag(CLEAN),
            Ordering::AcqRel,
            Ordering::Acquire,
            guard,
        );
    }

    fn insert_body(
        &self,
        guard: &BstGuard<K, V, R, P, A>,
        key: &K,
        value: &V,
    ) -> Result<bool, Restart> {
        let mut set = guard.shield_set::<6>();
        loop {
            let s = self.search(guard, &mut set, key)?;
            let l_ref = s.l.as_ref().expect("leaf is non-null");
            if l_ref.key.is_finite(key) {
                return Ok(false);
            }
            if s.pupdate.tag() != CLEAN {
                self.help(guard, &mut set, s.pupdate, s.p)?;
                continue;
            }

            // Build the new leaf and the new routing node (both private until the
            // decision CAS publishes the descriptor that references them).
            let new_leaf =
                guard.alloc(BstNode::leaf(BstKey::Finite(key.clone()), Some(value.clone())));
            let new_key = BstKey::Finite(key.clone());
            let (left, right, routing_key) = if new_key < l_ref.key {
                (new_leaf.shared(), s.l, l_ref.key.clone())
            } else {
                (s.l, new_leaf.shared(), new_key)
            };
            let new_internal = guard.alloc(BstNode::internal(routing_key, left, right));
            let op = guard.alloc(BstNode::iinfo(s.p, s.l, new_internal.shared()));

            // DEBRA+: protect everything the completion phase will touch, then decide.
            // The scope's drop releases the restricted protections on every exit from
            // this attempt (success, failed CAS, or Restart unwind); other schemes skip
            // the scope entirely (constant after monomorphization).
            let recovery = guard.supports_crash_recovery().then(|| guard.recovery());
            if let Some(recovery) = &recovery {
                recovery.protect(s.p);
                recovery.protect(s.l);
                recovery.protect(new_internal.shared());
                recovery.protect(op.shared());
            }
            if let Err(restart) = guard.check() {
                // Nothing published yet: recycle the fresh records and unwind to
                // recovery.
                guard.discard(op);
                guard.discard(new_internal);
                guard.discard(new_leaf);
                return Err(restart);
            }

            let p_ref = s.p.as_ref().expect("parent is non-null");
            match p_ref.update.compare_exchange_owned_tagged(
                s.pupdate,
                op,
                IFLAG,
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            ) {
                Ok(op) => {
                    // Decision CAS won: the descriptor — and, through it, the new leaf
                    // and routing node — now belong to the structure (the `Owned`s are
                    // consumed/forgotten, never freed here).  Hand off the previous
                    // descriptor, complete, done.
                    let (_, _) = (new_leaf, new_internal);
                    self.retire_info(guard, s.pupdate);
                    self.help_insert(guard, op.with_tag(0));
                    return Ok(true);
                }
                Err(op) => {
                    // Never made reachable (the decision CAS failed): recycle all three.
                    guard.discard(op);
                    guard.discard(new_internal);
                    guard.discard(new_leaf);
                    drop(recovery);
                    let actual = p_ref.update.load(Ordering::Acquire, guard);
                    self.help(guard, &mut set, actual, s.p)?;
                    continue;
                }
            }
        }
    }

    fn remove_body(&self, guard: &BstGuard<K, V, R, P, A>, key: &K) -> Result<bool, Restart> {
        let mut set = guard.shield_set::<6>();
        loop {
            let s = self.search(guard, &mut set, key)?;
            let l_ref = s.l.as_ref().expect("leaf is non-null");
            if !l_ref.key.is_finite(key) {
                return Ok(false);
            }
            if s.gpupdate.tag() != CLEAN {
                self.help(guard, &mut set, s.gpupdate, s.gp)?;
                continue;
            }
            if s.pupdate.tag() != CLEAN {
                self.help(guard, &mut set, s.pupdate, s.p)?;
                continue;
            }

            let op = guard.alloc(BstNode::dinfo(s.gp, s.p, s.l, s.pupdate));

            let recovery = guard.supports_crash_recovery().then(|| guard.recovery());
            if let Some(recovery) = &recovery {
                recovery.protect(s.gp);
                recovery.protect(s.p);
                recovery.protect(s.l);
                recovery.protect(op.shared());
            }
            if let Err(restart) = guard.check() {
                // Never made reachable.
                guard.discard(op);
                return Err(restart);
            }

            let gp_ref = s.gp.as_ref().expect("grandparent is non-null");
            match gp_ref.update.compare_exchange_owned_tagged(
                s.gpupdate,
                op,
                DFLAG,
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            ) {
                Ok(op) => {
                    self.retire_info(guard, s.gpupdate);
                    if self.help_delete(guard, op.with_tag(0)) {
                        // This thread's operation removed the parent routing node and
                        // the victim leaf: it owns their retirement (exactly once) —
                        // both were unlinked by the delete this thread owns and can no
                        // longer be reached by operations that start later.
                        guard.retire(s.p);
                        guard.retire(s.l);
                        return Ok(true);
                    }
                    continue;
                }
                Err(op) => {
                    // Never made reachable (the decision CAS failed).
                    guard.discard(op);
                    drop(recovery);
                    let actual = gp_ref.update.load(Ordering::Acquire, guard);
                    self.help(guard, &mut set, actual, s.gp)?;
                    continue;
                }
            }
        }
    }

    fn get_body(&self, guard: &BstGuard<K, V, R, P, A>, key: &K) -> Result<Option<V>, Restart> {
        let mut set = guard.shield_set::<6>();
        let s = self.search(guard, &mut set, key)?;
        let l_ref = s.l.as_ref().expect("leaf is non-null");
        if l_ref.key.is_finite(key) {
            Ok(l_ref.value.clone())
        } else {
            Ok(None)
        }
    }

    /// Number of keys currently in the tree; test/diagnostic helper (walks the tree).
    ///
    /// Like the other structures' `len`, the traversal announces no per-node protection,
    /// which only epoch-style schemes honor; call it only when no other thread is
    /// updating the tree.
    pub fn len(&self, handle: &mut BstHandle<K, V, R, P, A>) -> usize {
        handle.run(|guard| {
            let mut count = 0;
            let mut stack = vec![self.root.load(Ordering::Acquire, guard)];
            while let Some(n) = stack.pop() {
                let Some(r) = n.as_ref() else { continue };
                match r.kind {
                    NodeKind::Internal => {
                        stack.push(r.left.load(Ordering::Acquire, guard));
                        stack.push(r.right.load(Ordering::Acquire, guard));
                    }
                    NodeKind::Leaf => {
                        if matches!(r.key, BstKey::Finite(_)) {
                            count += 1;
                        }
                    }
                    _ => {}
                }
            }
            Ok(count)
        })
    }

    /// Returns `true` if the tree holds no keys (diagnostic helper).
    pub fn is_empty(&self, handle: &mut BstHandle<K, V, R, P, A>) -> bool {
        self.len(handle) == 0
    }
}

impl<K, V, R, P, A> ConcurrentMap<K, V> for ExternalBst<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<BstNode<K, V>>,
    P: Pool<BstNode<K, V>>,
    A: Allocator<BstNode<K, V>>,
{
    type Handle = BstHandle<K, V, R, P, A>;

    fn register(&self) -> Result<Self::Handle, RegistrationError> {
        self.domain.try_handle()
    }

    fn insert(&self, handle: &mut Self::Handle, key: K, value: V) -> bool {
        handle.run(|guard| self.insert_body(guard, &key, &value))
    }

    fn remove(&self, handle: &mut Self::Handle, key: &K) -> bool {
        handle.run(|guard| self.remove_body(guard, key))
    }

    fn contains(&self, handle: &mut Self::Handle, key: &K) -> bool {
        handle.run(|guard| self.get_body(guard, key)).is_some()
    }

    fn get(&self, handle: &mut Self::Handle, key: &K) -> Option<V> {
        handle.run(|guard| self.get_body(guard, key))
    }
}

impl<K, V, R, P, A> Drop for ExternalBst<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<BstNode<K, V>>,
    P: Pool<BstNode<K, V>>,
    A: Allocator<BstNode<K, V>>,
{
    fn drop(&mut self) {
        // Free every record reachable from the root, plus the descriptors still
        // referenced by reachable update words.  `free_graph` deduplicates by address (a
        // delete descriptor can be referenced by two nodes).  Records parked in limbo
        // bags / pools are freed separately by the Record Manager; the two sets are
        // disjoint because a descriptor is only retired when the word referencing it is
        // overwritten.
        self.domain.free_graph(self.root.load_ptr(Ordering::Relaxed), |record, children| {
            if record.kind == NodeKind::Internal {
                children.push(record.left.load_ptr(Ordering::Relaxed));
                children.push(record.right.load_ptr(Ordering::Relaxed));
                // `load_ptr` strips the state tag, leaving the descriptor pointer.
                children.push(record.update.load_ptr(Ordering::Relaxed));
            }
        });
    }
}

impl<K, V, R, P, A> fmt::Debug for ExternalBst<K, V, R, P, A>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    R: Reclaimer<BstNode<K, V>>,
    P: Pool<BstNode<K, V>>,
    A: Allocator<BstNode<K, V>>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExternalBst").field("reclaimer", &R::name()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use debra::{Debra, DebraPlus};
    use smr_alloc::{SystemAllocator, ThreadPool};
    use smr_baselines::HazardPointers;

    type Node = BstNode<u64, u64>;
    type DebraBst = ExternalBst<u64, u64, Debra<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
    type DebraPlusBst =
        ExternalBst<u64, u64, DebraPlus<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
    type HpBst =
        ExternalBst<u64, u64, HazardPointers<Node>, ThreadPool<Node>, SystemAllocator<Node>>;

    fn new_debra_bst(threads: usize) -> DebraBst {
        ExternalBst::new(Arc::new(RecordManager::new(threads)))
    }

    #[test]
    fn sequential_set_semantics() {
        let bst = new_debra_bst(1);
        let mut h = bst.register().unwrap();
        assert!(bst.is_empty(&mut h));
        assert!(bst.insert(&mut h, 10, 100));
        assert!(!bst.insert(&mut h, 10, 101));
        assert!(bst.insert(&mut h, 5, 50));
        assert!(bst.insert(&mut h, 20, 200));
        assert_eq!(bst.get(&mut h, &10), Some(100));
        assert_eq!(bst.get(&mut h, &5), Some(50));
        assert_eq!(bst.get(&mut h, &7), None);
        assert_eq!(bst.len(&mut h), 3);
        assert!(bst.remove(&mut h, &10));
        assert!(!bst.remove(&mut h, &10));
        assert!(!bst.contains(&mut h, &10));
        assert_eq!(bst.len(&mut h), 2);
        assert!(bst.remove(&mut h, &5));
        assert!(bst.remove(&mut h, &20));
        assert!(bst.is_empty(&mut h));
    }

    #[test]
    fn matches_a_sequential_model() {
        use std::collections::BTreeMap;
        let bst = new_debra_bst(1);
        let mut h = bst.register().unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..6000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = (x >> 33) % 128;
            match (x >> 61) % 3 {
                0 => assert_eq!(bst.insert(&mut h, key, key), model.insert(key, key).is_none()),
                1 => assert_eq!(bst.remove(&mut h, &key), model.remove(&key).is_some()),
                _ => assert_eq!(bst.contains(&mut h, &key), model.contains_key(&key)),
            }
        }
        assert_eq!(bst.len(&mut h), model.len());
        for k in model.keys() {
            assert!(bst.contains(&mut h, k));
        }
    }

    #[test]
    fn concurrent_disjoint_key_ranges() {
        let threads = 4;
        let per_thread = 2_000u64;
        let bst = Arc::new(new_debra_bst(threads + 1));
        let mut joins = Vec::new();
        for t in 0..threads as u64 {
            let bst = Arc::clone(&bst);
            joins.push(std::thread::spawn(move || {
                let mut h = bst.register().unwrap();
                let base = t * per_thread;
                for i in 0..per_thread {
                    assert!(bst.insert(&mut h, base + i, i));
                }
                for i in 0..per_thread {
                    assert!(bst.contains(&mut h, &(base + i)));
                }
                for i in (0..per_thread).step_by(2) {
                    assert!(bst.remove(&mut h, &(base + i)));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut h = bst.register().unwrap();
        assert_eq!(bst.len(&mut h), (threads as u64 * per_thread / 2) as usize);
    }

    #[test]
    fn concurrent_contended_small_keyrange_with_reclamation() {
        // High contention on a small key range forces constant node turnover, exercising
        // helping, descriptor hand-off and reclamation through the pool.
        let threads = 4;
        let bst = Arc::new(new_debra_bst(threads + 1));
        let mut joins = Vec::new();
        for t in 0..threads {
            let bst = Arc::clone(&bst);
            joins.push(std::thread::spawn(move || {
                let mut h = bst.register().unwrap();
                let mut net: i64 = 0;
                let mut x: u64 = 0xABCD_0123 + t as u64;
                for _ in 0..10_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let k = (x >> 33) % 16;
                    if (x >> 62) & 1 == 0 {
                        if bst.insert(&mut h, k, k) {
                            net += 1;
                        }
                    } else if bst.remove(&mut h, &k) {
                        net -= 1;
                    }
                }
                net
            }));
        }
        let net: i64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        let mut h = bst.register().unwrap();
        assert_eq!(bst.len(&mut h) as i64, net);
        let stats = bst.manager().reclaimer().stats();
        assert!(stats.retired > 0, "deletes must retire nodes");
        assert!(stats.reclaimed > 0, "DEBRA must reclaim nodes during the run");
    }

    #[test]
    fn works_with_debra_plus_and_neutralization() {
        let threads = 3;
        let bst: Arc<DebraPlusBst> =
            Arc::new(ExternalBst::new(Arc::new(RecordManager::new(threads + 1))));

        let mut joins = Vec::new();
        for t in 0..threads {
            let bst = Arc::clone(&bst);
            joins.push(std::thread::spawn(move || {
                let mut h = bst.register().unwrap();
                let mut x: u64 = 7 + t as u64;
                for i in 0..8_000u64 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let k = (x >> 33) % 64;
                    match i % 3 {
                        0 => {
                            bst.insert(&mut h, k, k);
                        }
                        1 => {
                            bst.remove(&mut h, &k);
                        }
                        _ => {
                            bst.contains(&mut h, &k);
                        }
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let stats = bst.manager().reclaimer().stats();
        assert!(stats.retired > 0);
        assert!(stats.reclaimed > 0);
    }

    #[test]
    fn works_with_hazard_pointers() {
        let threads = 3;
        let bst: Arc<HpBst> = Arc::new(ExternalBst::new(Arc::new(RecordManager::new(threads + 1))));
        let mut joins = Vec::new();
        for t in 0..threads {
            let bst = Arc::clone(&bst);
            joins.push(std::thread::spawn(move || {
                let mut h = bst.register().unwrap();
                let base = (t as u64) * 1000;
                for i in 0..1000u64 {
                    assert!(bst.insert(&mut h, base + i, i));
                }
                for i in 0..1000u64 {
                    assert!(bst.contains(&mut h, &(base + i)));
                }
                for i in 0..1000u64 {
                    assert!(bst.remove(&mut h, &(base + i)));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut h = bst.register().unwrap();
        assert!(bst.is_empty(&mut h));
        assert!(bst.manager().reclaimer().stats().reclaimed > 0);
    }
}

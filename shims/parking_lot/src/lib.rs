//! Offline shim for the `parking_lot` crate (see `shims/README.md`).
//!
//! Wraps `std::sync::Mutex` behind `parking_lot`'s non-poisoning API: `lock()` returns the
//! guard directly, recovering the data if a previous holder panicked.

use std::fmt;
use std::sync::{MutexGuard as StdGuard, PoisonError};

/// A non-poisoning mutual exclusion primitive (API subset of `parking_lot::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking the current thread until it is available.  Unlike
    /// `std`, a panic in a previous holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_panic() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }
}

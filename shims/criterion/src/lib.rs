//! Offline shim for the `criterion` crate (see `shims/README.md`).
//!
//! A thin timing loop behind criterion's API: `Criterion::default()` builder knobs,
//! `bench_function(id, |b| b.iter(...))`, [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`].  Two deliberate deviations from upstream:
//!
//! * measurements are the median of calibrated batch samples (robust to scheduler noise on the single-core CI container, but still no full statistical analysis);
//! * results are kept in memory and exposed through [`Criterion::results`], so bench
//!   targets can emit machine-readable JSON (used by `reclaimer_microbench`).

use std::time::{Duration, Instant};

/// Opaque barrier preventing the compiler from optimizing a value away.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// One finished measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark id as passed to [`Criterion::bench_function`].
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Number of timed iterations behind the mean.
    pub iters: u64,
}

/// The benchmark driver: configuration plus collected results.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the target number of timed batches (upstream: sample count).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Sets the time budget for the timed phase of each benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the time budget for the warm-up phase of each benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Upstream parses CLI filters here; the shim accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark and records (and prints) its result.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into();
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            measured: None,
        };
        f(&mut bencher);
        let (ns_per_iter, iters) = bencher.measured.unwrap_or((f64::NAN, 0));
        println!("{name:40} {ns_per_iter:12.1} ns/iter ({iters} iterations)");
        self.results.push(BenchResult { name, ns_per_iter, iters });
        self
    }

    /// All results collected so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// Passed to the closure of [`Criterion::bench_function`]; its [`iter`](Bencher::iter)
/// method times a routine.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    measured: Option<(f64, u64)>,
}

impl Bencher {
    /// Times `routine`, storing the mean nanoseconds per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, which also calibrates the batch size.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((self.measurement_time.as_secs_f64() / self.sample_size as f64 / per_iter)
            as u64)
            .max(1);

        // One timed sample per batch; the reported figure is the *median* of the sample
        // means, which is robust against the scheduler stealing whole quanta mid-sample
        // (the single-core CI container does this constantly — a global mean can be off
        // by 20% run to run, the median is stable to a few percent).
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let mut iters = 0u64;
        let deadline = Instant::now() + self.measurement_time;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
            iters += batch;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median = match samples.len() {
            0 => f64::NAN,
            n if n % 2 == 1 => samples[n / 2],
            n => (samples[n / 2 - 1] + samples[n / 2]) / 2.0,
        };
        self.measured = Some((median, iters));
    }
}

/// Declares a group of benchmark functions (both the plain and the `name/config/targets`
/// forms of upstream's macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Generates a `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_sane() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        c.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        let r = &c.results()[0];
        assert_eq!(r.name, "noop");
        assert!(r.iters > 0);
        assert!(r.ns_per_iter.is_finite() && r.ns_per_iter >= 0.0);
    }
}

//! Offline shim for the `crossbeam-utils` crate (see `shims/README.md`).
//!
//! Provides [`CachePadded`], the only item this workspace uses.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line, preventing false sharing between
/// adjacent per-thread slots in shared arrays.
///
/// 128-byte alignment matches upstream crossbeam on x86-64 (two 64-byte lines, because of
/// the adjacent-line prefetcher).
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads and aligns `value` to the length of a cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded").field("value", &self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_and_transparent() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        let mut p = CachePadded::new(7u64);
        *p += 1;
        assert_eq!(*p, 8);
        assert_eq!(p.into_inner(), 8);
    }
}

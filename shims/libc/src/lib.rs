//! Offline shim for the `libc` crate (see `shims/README.md`).
//!
//! Declares only the signal/pthread FFI surface the `neutralize` crate uses, with type
//! layouts matching glibc on Linux x86-64 (the only platform this workspace targets; the
//! struct layouts below are asserted against glibc's in the test module).

#![allow(non_camel_case_types)]

/// C `int`.
pub type c_int = i32;
/// C `unsigned long`.
pub type c_ulong = u64;
/// POSIX thread handle (glibc: an unsigned long).
pub type pthread_t = c_ulong;
/// Signal handler slot (address-sized, holds `SIG_DFL`/`SIG_IGN` or a function pointer).
pub type sighandler_t = usize;

/// `SIGUSR1` on Linux.
pub const SIGUSR1: c_int = 10;
/// `SIGUSR2` on Linux.
pub const SIGUSR2: c_int = 12;
/// `sigaction` flag: restart interruptible syscalls instead of failing with `EINTR`.
pub const SA_RESTART: c_int = 0x1000_0000;

/// glibc's `sigset_t`: a 1024-bit mask.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigset_t {
    __val: [c_ulong; 16],
}

/// glibc's `struct sigaction` on Linux x86-64.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigaction {
    /// Handler (union of `sa_handler` and `sa_sigaction`; address-sized either way).
    pub sa_sigaction: sighandler_t,
    /// Signals blocked while the handler runs.
    pub sa_mask: sigset_t,
    /// `SA_*` flags.
    pub sa_flags: c_int,
    /// Obsolete; present for layout compatibility.
    pub sa_restorer: Option<extern "C" fn()>,
}

extern "C" {
    /// Returns the calling thread's pthread handle.
    pub fn pthread_self() -> pthread_t;
    /// Sends signal `sig` to thread `thread`; returns 0 on success.
    pub fn pthread_kill(thread: pthread_t, sig: c_int) -> c_int;
    /// Initializes `set` to exclude all signals; returns 0 on success.
    pub fn sigemptyset(set: *mut sigset_t) -> c_int;
    /// Installs `act` as the disposition for `signum`; returns 0 on success.
    pub fn sigaction(signum: c_int, act: *const sigaction, oldact: *mut sigaction) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_match_glibc() {
        // glibc x86-64: sigset_t is 128 bytes; struct sigaction is 152 bytes
        // (8 handler + 128 mask + 4 flags + 4 padding + 8 restorer).
        assert_eq!(std::mem::size_of::<sigset_t>(), 128);
        assert_eq!(std::mem::size_of::<sigaction>(), 152);
    }

    #[test]
    fn pthread_kill_signal_zero_probes_liveness() {
        // Signal 0 performs error checking only — safe to call on ourselves.
        let rc = unsafe { pthread_kill(pthread_self(), 0) };
        assert_eq!(rc, 0);
    }
}

//! Offline shim for the `rand` crate, following the 0.8 API surface this workspace uses
//! (see `shims/README.md`): `Rng::gen_range` over integer ranges, `Rng::gen_bool`,
//! `SeedableRng::seed_from_u64`, `rngs::SmallRng` and `thread_rng`.
//!
//! The generator behind both `SmallRng` and `ThreadRng` is SplitMix64 — statistically fine
//! for workload generation and skip-list coin flips, not cryptographic.

use std::cell::Cell;

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods implemented on top of a raw `u64` source.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range` (half-open integer ranges).
    fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self.next_u64(), range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        // 53 uniform mantissa bits, exactly like upstream's `f64` sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Integer types samplable by [`Rng::gen_range`].
pub trait SampleRange: Copy + PartialOrd {
    /// Maps 64 random bits into `range`.
    fn sample(bits: u64, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(bits: u64, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                // Modulo bias is < 2^-32 for every span used in this workspace.
                range.start + (bits % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Non-cryptographic RNGs.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// A small, fast, seedable generator (SplitMix64 in this shim).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    /// The per-thread generator returned by [`thread_rng`](super::thread_rng).
    #[derive(Debug)]
    pub struct ThreadRng(());

    impl ThreadRng {
        pub(super) fn new() -> Self {
            ThreadRng(())
        }
    }

    impl Rng for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            super::THREAD_RNG_STATE.with(|s| {
                let mut state = s.get();
                let out = splitmix64(&mut state);
                s.set(state);
                out
            })
        }
    }
}

thread_local! {
    static THREAD_RNG_STATE: Cell<u64> = Cell::new({
        // Seed each thread differently from its stack address and a global counter.
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0x5EED);
        let c = COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed);
        let local = &c as *const _ as u64;
        c ^ local.rotate_left(17)
    });
}

/// Returns a handle to this thread's lazily seeded generator.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 should appear");
        for _ in 0..1000 {
            let v = r.gen_range(5u64..8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = SmallRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn thread_rng_works() {
        use super::thread_rng;
        let mut r = thread_rng();
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
    }
}

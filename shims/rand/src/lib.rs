//! Offline shim for the `rand` crate, following the 0.8 API surface this workspace uses
//! (see `shims/README.md`): `Rng::gen_range` over integer ranges, `Rng::gen_bool`,
//! `SeedableRng::seed_from_u64`, `rngs::SmallRng` and `thread_rng`.
//!
//! The generator behind both `SmallRng` and `ThreadRng` is SplitMix64 — statistically fine
//! for workload generation and skip-list coin flips, not cryptographic.

use std::cell::Cell;

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods implemented on top of a raw `u64` source.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range` (half-open integer ranges).
    fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self.next_u64(), range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        // 53 uniform mantissa bits, exactly like upstream's `f64` sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Integer types samplable by [`Rng::gen_range`].
pub trait SampleRange: Copy + PartialOrd {
    /// Maps 64 random bits into `range`.
    fn sample(bits: u64, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(bits: u64, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                // Modulo bias is < 2^-32 for every span used in this workspace.
                range.start + (bits % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Non-cryptographic RNGs.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// A small, fast, seedable generator (SplitMix64 in this shim).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    /// The per-thread generator returned by [`thread_rng`](super::thread_rng).
    #[derive(Debug)]
    pub struct ThreadRng(());

    impl ThreadRng {
        pub(super) fn new() -> Self {
            ThreadRng(())
        }
    }

    impl Rng for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            super::THREAD_RNG_STATE.with(|s| {
                let mut state = s.get();
                let out = splitmix64(&mut state);
                s.set(state);
                out
            })
        }
    }
}

/// Probability distributions samplable with any [`Rng`] (the `rand_distr` subset this
/// workspace uses).
pub mod distributions {
    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample using `rng` as the source of randomness.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The (finite) Zipf distribution over ranks `1..=n`: `P(k) ∝ k^(-s)`.
    ///
    /// Sampling is by rejection-inversion (Hörmann & Derflinger, "Rejection-inversion to
    /// generate variates from monotone discrete distributions", 1996): O(1) setup and O(1)
    /// expected time per sample for every exponent, with no precomputed tables — the same
    /// algorithm upstream `rand_distr::Zipf` uses.  Rank 1 is the most probable value.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Zipf {
        n: u64,
        s: f64,
        /// H(0.5): the left edge of the integral transform's domain.
        h_x1: f64,
        /// H(n + 0.5): the right edge.
        h_n: f64,
        /// Rejection cut: samples with `x - k <= cut` are accepted without evaluating H.
        cut: f64,
    }

    impl Zipf {
        /// Creates a Zipf distribution over `1..=n` with exponent `s`.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0`, or if `s` is negative or not finite.
        pub fn new(n: u64, s: f64) -> Zipf {
            assert!(n > 0, "Zipf needs at least one element");
            assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be finite and >= 0, got {s}");
            let h_x1 = h_integral(1.5, s) - 1.0;
            let h_n = h_integral(n as f64 + 0.5, s);
            let cut = 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s);
            Zipf { n, s, h_x1, h_n, cut }
        }

        /// Number of elements `n`.
        pub fn n(&self) -> u64 {
            self.n
        }

        /// Exponent `s`.
        pub fn s(&self) -> f64 {
            self.s
        }
    }

    /// H(x) = (x^(1-s) - 1) / (1-s), the antiderivative of h(x) = x^(-s); ln(x) as s → 1.
    /// Only differences of H values are ever used, so the constant of integration is
    /// irrelevant.
    fn h_integral(x: f64, s: f64) -> f64 {
        let log_x = x.ln();
        if (s - 1.0).abs() < 1e-9 {
            log_x
        } else {
            ((1.0 - s) * log_x).exp_m1() / (1.0 - s)
        }
    }

    /// h(x) = x^(-s), the (unnormalized) density.
    fn h(x: f64, s: f64) -> f64 {
        (-s * x.ln()).exp()
    }

    /// Inverse of [`h_integral`].
    fn h_integral_inverse(v: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-9 {
            v.exp()
        } else {
            // Clamp the argument of ln so extreme exponents cannot produce NaN.
            let t = (v * (1.0 - s)).max(-1.0 + 1e-15);
            (t.ln_1p() / (1.0 - s)).exp()
        }
    }

    impl Distribution<u64> for Zipf {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            if self.n == 1 {
                return 1;
            }
            loop {
                // Uniform in (H(n + 0.5), H(1.5) - 1]; 53 mantissa bits like gen_bool.
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let u = self.h_n + unit * (self.h_x1 - self.h_n);
                let x = h_integral_inverse(u, self.s);
                let k = x.round().clamp(1.0, self.n as f64);
                if k - x <= self.cut || u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                    return k as u64;
                }
            }
        }
    }
}

thread_local! {
    static THREAD_RNG_STATE: Cell<u64> = Cell::new({
        // Seed each thread differently from its stack address and a global counter.
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0x5EED);
        let c = COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed);
        let local = &c as *const _ as u64;
        c ^ local.rotate_left(17)
    });
}

/// Returns a handle to this thread's lazily seeded generator.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 should appear");
        for _ in 0..1000 {
            let v = r.gen_range(5u64..8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = SmallRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn zipf_is_skewed_in_rank_order() {
        use super::distributions::{Distribution, Zipf};
        let zipf = Zipf::new(1000, 0.99);
        let mut r = SmallRng::seed_from_u64(12345);
        let mut counts = [0u32; 4]; // ranks 1, 2, 3, everything else
        const DRAWS: u32 = 100_000;
        for _ in 0..DRAWS {
            let k = zipf.sample(&mut r);
            assert!((1..=1000).contains(&k), "sample {k} out of range");
            match k {
                1 => counts[0] += 1,
                2 => counts[1] += 1,
                3 => counts[2] += 1,
                _ => counts[3] += 1,
            }
        }
        // Ranks must come out in decreasing frequency, rank 1 far above uniform (which
        // would be ~100 draws per rank).
        assert!(counts[0] > counts[1], "{counts:?}");
        assert!(counts[1] > counts[2], "{counts:?}");
        assert!(counts[0] > 5_000, "rank 1 should be hot, got {counts:?}");
        // Theoretical P(1) for n=1000, s=0.99 is ~0.125; allow a generous band.
        assert!((9_000..16_000).contains(&counts[0]), "{counts:?}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        use super::distributions::{Distribution, Zipf};
        let zipf = Zipf::new(10, 0.0);
        let mut r = SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        for _ in 0..50_000 {
            counts[(zipf.sample(&mut r) - 1) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((4_000..6_000).contains(&c), "rank {} count {c} not ~uniform", i + 1);
        }
    }

    #[test]
    fn zipf_handles_exponent_one_and_single_element() {
        use super::distributions::{Distribution, Zipf};
        let zipf = Zipf::new(100, 1.0);
        let mut r = SmallRng::seed_from_u64(3);
        let mut first = 0u32;
        for _ in 0..10_000 {
            let k = zipf.sample(&mut r);
            assert!((1..=100).contains(&k));
            if k == 1 {
                first += 1;
            }
        }
        // P(1) = 1/H_100 ≈ 0.193 for s=1.
        assert!((1_500..2_400).contains(&first), "got {first}");
        let one = Zipf::new(1, 0.99);
        assert_eq!(one.sample(&mut r), 1);
    }

    #[test]
    fn thread_rng_works() {
        use super::thread_rng;
        let mut r = thread_rng();
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
    }
}

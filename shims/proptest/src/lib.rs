//! Offline shim for the `proptest` crate (see `shims/README.md`).
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro, `prop_assert*`,
//! [`any`], integer-range / tuple / [`collection::vec`] strategies.  Each property runs a
//! fixed number of deterministically seeded cases (`PROPTEST_CASES`, default 64).  There is
//! no shrinking; a failing case prints its case number and seed so it can be replayed.

use std::ops::Range;

/// The deterministic random source handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A generator of values of one type — the shim's rendition of `proptest::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)*)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical "any value" strategy (the shim's `proptest::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy producing arbitrary values of `Self`.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;

    fn arbitrary() -> Any<bool> {
        Any(std::marker::PhantomData)
    }
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_for_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = Any<$t>;

            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }

        impl Strategy for Any<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_for_int!(u8, u16, u32, u64, usize);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from a range; created by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `len` and whose elements are drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test body needs in scope.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Prints the failing case's replay information if the property body panics.
#[derive(Debug)]
pub struct CaseGuard {
    /// Test name, case index and seed.
    pub info: (&'static str, u64, u64),
    /// Disarmed when the case completes without panicking.
    pub armed: bool,
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed {
            let (name, case, seed) = self.info;
            eprintln!("proptest shim: property `{name}` failed at case {case} (seed 0x{seed:x}); rerun is deterministic");
        }
    }
}

/// The shim's rendition of proptest's `proptest!` macro: turns each
/// `fn name(pat in strategy, ...) { body }` item into a `#[test]` running
/// [`cases`] deterministically seeded cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for __case in 0..$crate::cases() {
                    // Seed differs per property (via its name) and per case.
                    let mut __seed: u64 = 0xDEB2_A5EE_D000_0000 ^ __case.wrapping_mul(0x9E37_79B9);
                    for b in stringify!($name).bytes() {
                        __seed = __seed.wrapping_mul(31).wrapping_add(b as u64);
                    }
                    let mut __rng = $crate::TestRng::new(__seed);
                    let mut __guard = $crate::CaseGuard {
                        info: (stringify!($name), __case, __seed),
                        armed: true,
                    };
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                    __guard.armed = false;
                    let _ = __guard;
                }
            }
        )*
    };
}

/// `assert!` under a name the proptest API exposes.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a name the proptest API exposes.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a name the proptest API exposes.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Range, tuple and vec strategies stay in bounds.
        #[test]
        fn strategies_stay_in_bounds(
            v in crate::collection::vec(0usize..100, 0..50),
            (a, b) in (0u8..3, 10u64..20),
            flag in any::<bool>(),
        ) {
            prop_assert!(v.len() < 50);
            prop_assert!(v.iter().all(|&x| x < 100));
            prop_assert!(a < 3);
            prop_assert!((10..20).contains(&b));
            let _ = flag;
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut r1 = crate::TestRng::new(5);
        let mut r2 = crate::TestRng::new(5);
        let s = 0u64..1000;
        let a: Vec<u64> = (0..64).map(|_| s.sample(&mut r1)).collect();
        let b: Vec<u64> = (0..64).map(|_| s.sample(&mut r2)).collect();
        assert_eq!(a, b);
    }
}

//! Integration tests for the type-stable page-pool allocation subsystem (`smr-pagepool`).
//!
//! The load-bearing property is the **type-stability contract** (DESIGN.md §7): a slot
//! address handed out for a type `T` is only ever reused for `T`, for the lifetime of
//! the process — pages are never unmapped and never re-carved for another type.  This is
//! the guarantee optimistic schemes (VBR, automatic reclamation à la FreeAccess) build
//! on: a stale pointer may observe a *recycled* record, but never a record of a
//! different type or unmapped memory.  The property tests below drive the public
//! `Allocator`/`Pool` traits the Record Manager composes and check the contract from
//! the outside; the flow tests check the magazine → overflow → cross-handle refill
//! plumbing the per-thread hot path relies on.
//!
//! Each test uses its own private payload types: page stores are process-global and
//! shared per `TypeId`, so address-set assertions must not race with other tests'
//! allocations of the same type.

use std::collections::HashSet;
use std::ptr::NonNull;
use std::sync::Arc;

use proptest::prelude::*;

use debra_repro::blockbag::DEFAULT_BLOCK_CAPACITY;
use debra_repro::debra::{Allocator, AllocatorThread, Pool, PoolThread};
use debra_repro::smr_pagepool::{store_for, PageAllocator, PagePool};

/// Two payload types with *identical* layout: if the allocator distinguished types by
/// size/alignment instead of by `TypeId`, these would share slots and the disjointness
/// assertions below would catch it.
#[derive(Debug)]
struct PayloadA(#[allow(dead_code)] [u64; 4]);
#[derive(Debug)]
struct PayloadB(#[allow(dead_code)] [u64; 4]);

proptest! {
    /// The type-stability contract: addresses handed out for `PayloadA` and addresses
    /// handed out for the layout-identical `PayloadB` are disjoint — even after every
    /// `PayloadA` slot has been freed, reallocated and freed again.  Every address stays
    /// owned by its type's page store and is never owned by the other store.
    #[test]
    fn recycled_addresses_only_ever_carry_the_same_type(
        n_a in 1usize..400,
        n_b in 1usize..400,
        recycle in 1usize..200,
    ) {
        let store_a = store_for::<PayloadA>();
        let store_b = store_for::<PayloadB>();
        let alloc_a: Arc<PageAllocator<PayloadA>> = Arc::new(PageAllocator::new(1));
        let alloc_b: Arc<PageAllocator<PayloadB>> = Arc::new(PageAllocator::new(1));
        let mut ha = PageAllocator::register(&alloc_a, 0);
        let mut hb = PageAllocator::register(&alloc_b, 0);

        let a_records: Vec<NonNull<PayloadA>> =
            (0..n_a).map(|i| ha.allocate(PayloadA([i as u64; 4]))).collect();
        let b_records: Vec<NonNull<PayloadB>> =
            (0..n_b).map(|i| hb.allocate(PayloadB([i as u64; 4]))).collect();

        let a_addrs: HashSet<usize> = a_records.iter().map(|p| p.as_ptr() as usize).collect();
        let b_addrs: HashSet<usize> = b_records.iter().map(|p| p.as_ptr() as usize).collect();
        prop_assert_eq!(a_addrs.len(), n_a, "live PayloadA addresses must be distinct");
        prop_assert_eq!(b_addrs.len(), n_b, "live PayloadB addresses must be distinct");
        prop_assert!(a_addrs.is_disjoint(&b_addrs), "typed slot regions must never overlap");
        for p in &a_records {
            prop_assert!(store_a.owns(*p), "PayloadA slots live in PayloadA's store");
            prop_assert!(
                !store_b.owns(NonNull::new(p.as_ptr() as *mut PayloadB).unwrap()),
                "a PayloadA slot must never belong to PayloadB's page store"
            );
        }

        // Free everything, then reallocate: recycled slots still come from the same
        // store, still never from the other type's store.
        for p in a_records {
            // SAFETY: allocated above, never published, freed exactly once.
            unsafe { ha.deallocate(p) };
        }
        for _ in 0..recycle.min(n_a) {
            let p = ha.allocate(PayloadA([7; 4]));
            prop_assert!(store_a.owns(p), "recycled slots stay inside the type's pages");
            prop_assert!(
                !store_b.owns(NonNull::new(p.as_ptr() as *mut PayloadB).unwrap()),
                "recycling must never cross the type boundary"
            );
            // SAFETY: just allocated, never published.
            unsafe { ha.deallocate(p) };
        }
        for p in b_records {
            // SAFETY: allocated above, never published, freed exactly once.
            unsafe { hb.deallocate(p) };
        }
    }
}

#[derive(Debug)]
struct PoolRec(#[allow(dead_code)] u64);

proptest! {
    /// The cross-thread flow path: a producer handle that frees more records than its
    /// two bounded magazines hold (2 × 256) spills full blocks into the global overflow
    /// pool, and a *different* handle refills its magazine from there — returning
    /// exactly the addresses the producer freed, each at most once.
    #[test]
    fn magazine_overflow_refills_another_handle(extra in 1usize..256, takes in 1usize..512) {
        let n = 3 * DEFAULT_BLOCK_CAPACITY + extra;
        let pool: Arc<PagePool<PoolRec>> = Arc::new(PagePool::new(2));
        let alloc: Arc<PageAllocator<PoolRec>> = Arc::new(PageAllocator::new(2));
        let mut producer_alloc = PageAllocator::register(&alloc, 0);
        let mut consumer_alloc = PageAllocator::register(&alloc, 1);
        let mut producer = PagePool::register(&pool, 0);
        let mut consumer = PagePool::register(&pool, 1);

        let records: Vec<NonNull<PoolRec>> =
            (0..n).map(|i| producer_alloc.allocate(PoolRec(i as u64))).collect();
        let freed: HashSet<usize> = records.iter().map(|p| p.as_ptr() as usize).collect();
        for p in records {
            // SAFETY: allocated above, never published; the pool caches it (the record
            // keeps its live value) instead of freeing the slot.
            unsafe { producer.deallocate(p, &mut producer_alloc) };
        }
        // Two bounded magazines cap the handle's cache; the rest must have spilled.
        prop_assert!(
            producer.cached() <= 2 * DEFAULT_BLOCK_CAPACITY,
            "magazines are bounded at two blocks ({} cached)",
            producer.cached()
        );

        // A different handle refills from the global overflow: every record it takes is
        // one the producer freed, and no address is handed out twice.
        let mut seen = HashSet::new();
        let mut got = 0usize;
        for _ in 0..takes {
            let Some(p) = consumer.try_take() else { break };
            let addr = p.as_ptr() as usize;
            prop_assert!(freed.contains(&addr), "refilled records come from the producer");
            prop_assert!(seen.insert(addr), "no record is handed out twice");
            got += 1;
            // SAFETY: ownership was transferred by `try_take`; free the slot for real.
            unsafe { consumer_alloc.deallocate(p) };
        }
        let spilled = n - producer.cached();
        prop_assert_eq!(
            got,
            takes.min(spilled),
            "the consumer drains exactly what overflowed (wanted {}, {} spilled)",
            takes,
            spilled
        );

        let stats = Pool::stats(&*pool);
        prop_assert!(stats.pages_mapped > 0, "slots live on mapped pages");
    }
}

#[derive(Debug)]
struct ReuseRec(#[allow(dead_code)] u64);

/// Pages are process-global per type: a second allocator instance of the same `T` shares
/// the first one's page store (same `Arc`), and reallocating after the first instance is
/// gone reuses its slots instead of mapping new pages — the never-unmap half of the
/// type-stability contract.
#[test]
fn same_type_allocators_share_one_store_and_reuse_its_pages() {
    const N: usize = 600;
    let first: Arc<PageAllocator<ReuseRec>> = Arc::new(PageAllocator::new(1));
    let store = Arc::clone(first.store());
    let mut handle = PageAllocator::register(&first, 0);
    let records: Vec<NonNull<ReuseRec>> =
        (0..N).map(|i| handle.allocate(ReuseRec(i as u64))).collect();
    for p in records {
        // SAFETY: allocated above, never published, freed exactly once.
        unsafe { handle.deallocate(p) };
    }
    drop(handle);
    drop(first);

    let pages_before = store.pages_mapped();
    assert!(pages_before > 0);
    assert!(store.slots_free() >= N as u64, "freed slots survive their allocator");

    let second: Arc<PageAllocator<ReuseRec>> = Arc::new(PageAllocator::new(1));
    assert!(Arc::ptr_eq(second.store(), &store), "same type, same process-global store");
    let mut handle = PageAllocator::register(&second, 0);
    let records: Vec<NonNull<ReuseRec>> =
        (0..N).map(|i| handle.allocate(ReuseRec(i as u64))).collect();
    assert_eq!(
        store.pages_mapped(),
        pages_before,
        "reallocating within the freed capacity must not map new pages"
    );
    for p in &records {
        assert!(store.owns(*p));
    }
    for p in records {
        // SAFETY: allocated above, never published, freed exactly once.
        unsafe { handle.deallocate(p) };
    }
}

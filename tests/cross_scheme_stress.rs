//! Cross-crate integration tests: every data structure is exercised under every
//! reclamation scheme through the Record Manager, with consistency invariants checked at
//! the end.  This is the "one data structure, any reclaimer" promise of the paper's
//! Record Manager abstraction, tested end to end.

use std::sync::Arc;

use debra_repro::debra::{Debra, DebraPlus, Reclaimer, RecordManager};
use debra_repro::lockfree_ds::{
    BstNode, ConcurrentMap, ExternalBst, HarrisMichaelList, ListNode, SkipList, SkipNode,
};
use debra_repro::smr_alloc::{BumpAllocator, SystemAllocator, ThreadPool};
use debra_repro::smr_baselines::{ClassicEbr, HazardPointers, NoReclaim, ThreadScanLite};
use debra_repro::smr_hashmap::{HashMapNode, LockFreeHashMap};
use debra_repro::smr_ibr::Ibr;

const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 4_000;
/// Operation count for rows that must observe non-zero *reclaimed* counts: the epoch
/// schemes hand back whole limbo-bag blocks (256 records each, amortized O(1)), so the
/// workload must retire a few thousand records per thread before anything can flow back.
const OPS_PER_THREAD_RECLAIM: u64 = 20_000;
/// Budget for the skip-list reclaim rows: the skip list's taller operations spread a
/// similar number of retires over more epoch rotations, so each rotation's limbo bag
/// holds fewer records and 256-record blocks need a longer run to reliably fill (the
/// `reclaimed > 0` assertion flaked roughly once per thirty runs at the base budget).
const OPS_PER_THREAD_RECLAIM_SKIPLIST: u64 = 2 * OPS_PER_THREAD_RECLAIM;
const KEY_RANGE: u64 = 256;

/// Runs a mixed workload (`ops_per_thread` operations on each of [`THREADS`] workers) on
/// any map and checks that the net number of successful inserts matches the final size
/// reported by a full traversal.
fn stress_n<M>(map: Arc<M>, ops_per_thread: u64, check_len: impl Fn(&M, usize))
where
    M: ConcurrentMap<u64, u64> + 'static,
{
    let mut joins = Vec::new();
    for tid in 0..THREADS {
        let map = Arc::clone(&map);
        joins.push(std::thread::spawn(move || {
            let mut handle = map.register().expect("register worker");
            let mut net: i64 = 0;
            let mut x: u64 = 0xA076_1D64_78BD_642F ^ (tid as u64) << 17;
            for _ in 0..ops_per_thread {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let key = (x >> 33) % KEY_RANGE;
                match (x >> 61) % 4 {
                    0 | 1 => {
                        if map.insert(&mut handle, key, key.wrapping_mul(3)) {
                            net += 1;
                        }
                    }
                    2 => {
                        if map.remove(&mut handle, &key) {
                            net -= 1;
                        }
                    }
                    _ => {
                        let _ = map.get(&mut handle, &key);
                    }
                }
            }
            net
        }));
    }
    let net: i64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    assert!(net >= 0, "net successful inserts cannot be negative");
    check_len(&map, net as usize);
}

macro_rules! stress_test {
    ($name:ident, $structure:ident, $node:ident, $reclaimer:ty, $pool:ident, $alloc:ident) => {
        stress_test!($name, $structure, $node, $reclaimer, $pool, $alloc,
            expect_reclaim: false, ops: OPS_PER_THREAD);
    };
    ($name:ident, $structure:ident, $node:ident, $reclaimer:ty, $pool:ident, $alloc:ident,
     expect_reclaim: $expect_reclaim:expr) => {
        stress_test!($name, $structure, $node, $reclaimer, $pool, $alloc,
            expect_reclaim: $expect_reclaim, ops: OPS_PER_THREAD_RECLAIM);
    };
    ($name:ident, $structure:ident, $node:ident, $reclaimer:ty, $pool:ident, $alloc:ident,
     expect_reclaim: $expect_reclaim:expr, ops: $ops:expr) => {
        #[test]
        fn $name() {
            type Node = $node<u64, u64>;
            type Map = $structure<u64, u64, $reclaimer, $pool<Node>, $alloc<Node>>;
            let manager = Arc::new(RecordManager::new(THREADS + 1));
            let map: Arc<Map> = Arc::new($structure::new(Arc::clone(&manager)));
            let ops = $ops;
            stress_n(Arc::clone(&map), ops, |map, expected| {
                let mut handle = map.register().expect("register checker");
                assert_eq!(map.len(&mut handle), expected, "final size must match net inserts");
            });
            // Reclamation bookkeeping must be consistent: nothing reclaimed that was not
            // retired first.
            let stats = manager.reclaimer().stats();
            assert!(stats.reclaimed <= stats.retired);
            if $expect_reclaim {
                assert!(stats.retired > 0, "the workload must retire records");
                assert!(
                    stats.reclaimed > 0,
                    "a reclaiming scheme must actually reclaim during the stress"
                );
            }
        }
    };
}

// --- the BST (the paper's primary workload) under every scheme -------------------------
// Every reclaiming scheme must show a non-zero reclaimed count at the end of the stress
// (the safe-API acceptance matrix of the Domain/Guard/ShieldSet port), not just
// consistent bookkeeping; `None` by definition never reclaims.
stress_test!(bst_none, ExternalBst, BstNode, NoReclaim<Node>, ThreadPool, SystemAllocator);
stress_test!(
    bst_debra,
    ExternalBst,
    BstNode,
    Debra<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    bst_debra_plus,
    ExternalBst,
    BstNode,
    DebraPlus<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    bst_hazard_pointers,
    ExternalBst,
    BstNode,
    HazardPointers<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    bst_classic_ebr,
    ExternalBst,
    BstNode,
    ClassicEbr<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    bst_threadscan,
    ExternalBst,
    BstNode,
    ThreadScanLite<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    bst_ibr,
    ExternalBst,
    BstNode,
    Ibr<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(bst_debra_bump, ExternalBst, BstNode, Debra<Node>, ThreadPool, BumpAllocator);
stress_test!(bst_ibr_bump, ExternalBst, BstNode, Ibr<Node>, ThreadPool, BumpAllocator);

// --- the Harris-Michael list under every scheme -----------------------------------------
stress_test!(list_none, HarrisMichaelList, ListNode, NoReclaim<Node>, ThreadPool, SystemAllocator);
stress_test!(list_debra, HarrisMichaelList, ListNode, Debra<Node>, ThreadPool, SystemAllocator);
stress_test!(
    list_debra_plus,
    HarrisMichaelList,
    ListNode,
    DebraPlus<Node>,
    ThreadPool,
    SystemAllocator
);
stress_test!(
    list_hazard_pointers,
    HarrisMichaelList,
    ListNode,
    HazardPointers<Node>,
    ThreadPool,
    SystemAllocator
);
stress_test!(
    list_classic_ebr,
    HarrisMichaelList,
    ListNode,
    ClassicEbr<Node>,
    ThreadPool,
    SystemAllocator
);
stress_test!(list_ibr, HarrisMichaelList, ListNode, Ibr<Node>, ThreadPool, SystemAllocator);

stress_test!(
    list_threadscan,
    HarrisMichaelList,
    ListNode,
    ThreadScanLite<Node>,
    ThreadPool,
    SystemAllocator
);

// --- the hash map under every scheme (the acceptance matrix of the hashmap PR) ----------
// Every reclaiming scheme must have a non-zero reclaimed count at the end of the stress,
// not just consistent bookkeeping.
stress_test!(
    hashmap_none,
    LockFreeHashMap,
    HashMapNode,
    NoReclaim<Node>,
    ThreadPool,
    SystemAllocator
);
stress_test!(
    hashmap_debra,
    LockFreeHashMap,
    HashMapNode,
    Debra<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    hashmap_debra_plus,
    LockFreeHashMap,
    HashMapNode,
    DebraPlus<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    hashmap_hazard_pointers,
    LockFreeHashMap,
    HashMapNode,
    HazardPointers<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    hashmap_classic_ebr,
    LockFreeHashMap,
    HashMapNode,
    ClassicEbr<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    hashmap_threadscan,
    LockFreeHashMap,
    HashMapNode,
    ThreadScanLite<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    hashmap_ibr,
    LockFreeHashMap,
    HashMapNode,
    Ibr<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    hashmap_debra_bump,
    LockFreeHashMap,
    HashMapNode,
    Debra<Node>,
    ThreadPool,
    BumpAllocator,
    expect_reclaim: true
);

// --- the skip list under every scheme ---------------------------------------------------
// The safe-API port extended the skip list's matrix to the per-access protection schemes
// (HP, ThreadScan) that the raw implementation never ran under: the insert pre-announces
// its private node and pins the target level's predecessor (`ShieldSet` roles `NODE` /
// `TPRED`), which is what makes the post-publication completion phase safe there.
stress_test!(skiplist_none, SkipList, SkipNode, NoReclaim<Node>, ThreadPool, SystemAllocator);
stress_test!(
    skiplist_debra,
    SkipList,
    SkipNode,
    Debra<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true,
    ops: OPS_PER_THREAD_RECLAIM_SKIPLIST
);
stress_test!(
    skiplist_debra_plus,
    SkipList,
    SkipNode,
    DebraPlus<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true,
    ops: OPS_PER_THREAD_RECLAIM_SKIPLIST
);
stress_test!(
    skiplist_hazard_pointers,
    SkipList,
    SkipNode,
    HazardPointers<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true,
    ops: OPS_PER_THREAD_RECLAIM_SKIPLIST
);
stress_test!(
    skiplist_classic_ebr,
    SkipList,
    SkipNode,
    ClassicEbr<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true,
    ops: OPS_PER_THREAD_RECLAIM_SKIPLIST
);
stress_test!(
    skiplist_threadscan,
    SkipList,
    SkipNode,
    ThreadScanLite<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true,
    ops: OPS_PER_THREAD_RECLAIM_SKIPLIST
);
stress_test!(
    skiplist_ibr,
    SkipList,
    SkipNode,
    Ibr<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true,
    ops: OPS_PER_THREAD_RECLAIM_SKIPLIST
);
stress_test!(skiplist_ebr_bump, SkipList, SkipNode, ClassicEbr<Node>, ThreadPool, BumpAllocator);

/// The 8-thread hash-map acceptance row: oversubscribed (the container has fewer cores),
/// under DEBRA+ so the neutralization machinery is exercised while bucket chains churn.
/// Size consistency and actual reclamation are both required.
#[test]
fn hashmap_debra_plus_8_threads() {
    const WIDE: usize = 8;
    type Node = HashMapNode<u64, u64>;
    type Map = LockFreeHashMap<u64, u64, DebraPlus<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
    let manager = Arc::new(RecordManager::new(WIDE + 1));
    // Few buckets relative to the key range, so chains are long and contended.
    let map: Arc<Map> = Arc::new(LockFreeHashMap::with_buckets(Arc::clone(&manager), 32));

    let mut joins = Vec::new();
    for tid in 0..WIDE {
        let map = Arc::clone(&map);
        joins.push(std::thread::spawn(move || {
            let mut handle = map.register().expect("register worker");
            let mut net: i64 = 0;
            let mut x: u64 = 0xA076_1D64_78BD_642F ^ (tid as u64) << 17;
            for _ in 0..OPS_PER_THREAD_RECLAIM {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let key = (x >> 33) % KEY_RANGE;
                match (x >> 61) % 4 {
                    0 | 1 => {
                        if map.insert(&mut handle, key, key.wrapping_mul(3)) {
                            net += 1;
                        }
                    }
                    2 => {
                        if map.remove(&mut handle, &key) {
                            net -= 1;
                        }
                    }
                    _ => {
                        let _ = map.get(&mut handle, &key);
                    }
                }
            }
            net
        }));
    }
    let net: i64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    assert!(net >= 0);
    let mut handle = map.register().expect("register checker");
    assert_eq!(map.len(&mut handle), net as usize, "final size must match net inserts");
    let stats = manager.reclaimer().stats();
    assert!(stats.retired > 0);
    assert!(stats.reclaimed > 0, "DEBRA+ must reclaim during an 8-thread hash-map run");
    assert!(stats.reclaimed <= stats.retired);
}

/// The acceptance bar for IBR: the BST stress passes at 8 worker threads, and IBR must
/// actually have reclaimed records along the way (not just parked them in limbo).
#[test]
fn bst_ibr_8_threads() {
    const WIDE: usize = 8;
    type Node = BstNode<u64, u64>;
    type Map = ExternalBst<u64, u64, Ibr<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
    let manager = Arc::new(RecordManager::new(WIDE + 1));
    let map: Arc<Map> = Arc::new(ExternalBst::new(Arc::clone(&manager)));

    let mut joins = Vec::new();
    for tid in 0..WIDE {
        let map = Arc::clone(&map);
        joins.push(std::thread::spawn(move || {
            let mut handle = map.register().expect("register worker");
            let mut net: i64 = 0;
            let mut x: u64 = 0xA076_1D64_78BD_642F ^ (tid as u64) << 17;
            for _ in 0..OPS_PER_THREAD {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let key = (x >> 33) % KEY_RANGE;
                match (x >> 61) % 4 {
                    0 | 1 => {
                        if map.insert(&mut handle, key, key.wrapping_mul(3)) {
                            net += 1;
                        }
                    }
                    2 => {
                        if map.remove(&mut handle, &key) {
                            net -= 1;
                        }
                    }
                    _ => {
                        let _ = map.get(&mut handle, &key);
                    }
                }
            }
            net
        }));
    }
    let net: i64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    assert!(net >= 0);
    let mut handle = map.register().expect("register checker");
    assert_eq!(map.len(&mut handle), net as usize, "final size must match net inserts");
    let stats = manager.reclaimer().stats();
    assert!(stats.retired > 0);
    assert!(stats.reclaimed > 0, "IBR must reclaim during an 8-thread run");
    assert!(stats.reclaimed <= stats.retired);
}

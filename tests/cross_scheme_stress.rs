//! Cross-crate integration tests: every data structure is exercised under every
//! reclamation scheme through the Record Manager, with consistency invariants checked at
//! the end.  This is the "one data structure, any reclaimer" promise of the paper's
//! Record Manager abstraction, tested end to end.

use std::sync::Arc;

use debra_repro::debra::{Debra, DebraPlus, Reclaimer, RecordManager};
use debra_repro::lockfree_ds::{
    BstNode, ConcurrentBag, ConcurrentMap, ExternalBst, HarrisMichaelList, ListNode, SkipList,
    SkipNode,
};
use debra_repro::smr_alloc::{BumpAllocator, SystemAllocator, ThreadPool};
use debra_repro::smr_baselines::{ClassicEbr, HazardPointers, NoReclaim, ThreadScanLite};
use debra_repro::smr_hashmap::{HashMapNode, LockFreeHashMap};
use debra_repro::smr_ibr::Ibr;
use debra_repro::smr_pagepool::{PageAllocator, PagePool};
use debra_repro::smr_queue::{MsQueue, QueueNode, StackNode, TreiberStack};
use debra_repro::smr_vbr::Vbr;

const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 4_000;
/// Operation count for rows that must observe non-zero *reclaimed* counts: the epoch
/// schemes hand back whole limbo-bag blocks (256 records each, amortized O(1)), so the
/// workload must retire a few thousand records per thread before anything can flow back.
const OPS_PER_THREAD_RECLAIM: u64 = 20_000;
/// Budget for the skip-list reclaim rows: the skip list's taller operations spread a
/// similar number of retires over more epoch rotations, so each rotation's limbo bag
/// holds fewer records and 256-record blocks need a longer run to reliably fill (the
/// `reclaimed > 0` assertion flaked roughly once per thirty runs at the base budget).
const OPS_PER_THREAD_RECLAIM_SKIPLIST: u64 = 2 * OPS_PER_THREAD_RECLAIM;
const KEY_RANGE: u64 = 256;

/// Runs a mixed workload (`ops_per_thread` operations on each of [`THREADS`] workers) on
/// any map and checks that the net number of successful inserts matches the final size
/// reported by a full traversal.
fn stress_n<M>(map: Arc<M>, ops_per_thread: u64, check_len: impl Fn(&M, usize))
where
    M: ConcurrentMap<u64, u64> + 'static,
{
    let mut joins = Vec::new();
    for tid in 0..THREADS {
        let map = Arc::clone(&map);
        joins.push(std::thread::spawn(move || {
            let mut handle = map.register().expect("register worker");
            let mut net: i64 = 0;
            let mut x: u64 = 0xA076_1D64_78BD_642F ^ (tid as u64) << 17;
            for _ in 0..ops_per_thread {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let key = (x >> 33) % KEY_RANGE;
                match (x >> 61) % 4 {
                    0 | 1 => {
                        if map.insert(&mut handle, key, key.wrapping_mul(3)) {
                            net += 1;
                        }
                    }
                    2 => {
                        if map.remove(&mut handle, &key) {
                            net -= 1;
                        }
                    }
                    _ => {
                        let _ = map.get(&mut handle, &key);
                    }
                }
            }
            net
        }));
    }
    let net: i64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    assert!(net >= 0, "net successful inserts cannot be negative");
    check_len(&map, net as usize);
}

macro_rules! stress_test {
    ($name:ident, $structure:ident, $node:ident, $reclaimer:ty, $pool:ident, $alloc:ident) => {
        stress_test!($name, $structure, $node, $reclaimer, $pool, $alloc,
            expect_reclaim: false, ops: OPS_PER_THREAD);
    };
    ($name:ident, $structure:ident, $node:ident, $reclaimer:ty, $pool:ident, $alloc:ident,
     expect_reclaim: $expect_reclaim:expr) => {
        stress_test!($name, $structure, $node, $reclaimer, $pool, $alloc,
            expect_reclaim: $expect_reclaim, ops: OPS_PER_THREAD_RECLAIM);
    };
    ($name:ident, $structure:ident, $node:ident, $reclaimer:ty, $pool:ident, $alloc:ident,
     expect_reclaim: $expect_reclaim:expr, ops: $ops:expr) => {
        #[test]
        fn $name() {
            type Node = $node<u64, u64>;
            type Map = $structure<u64, u64, $reclaimer, $pool<Node>, $alloc<Node>>;
            let manager = Arc::new(RecordManager::new(THREADS + 1));
            let map: Arc<Map> = Arc::new($structure::new(Arc::clone(&manager)));
            let ops = $ops;
            stress_n(Arc::clone(&map), ops, |map, expected| {
                let mut handle = map.register().expect("register checker");
                assert_eq!(map.len(&mut handle), expected, "final size must match net inserts");
            });
            // Reclamation bookkeeping must be consistent: nothing reclaimed that was not
            // retired first.
            let stats = manager.reclaimer().stats();
            assert!(stats.reclaimed <= stats.retired);
            if $expect_reclaim {
                assert!(stats.retired > 0, "the workload must retire records");
                assert!(
                    stats.reclaimed > 0,
                    "a reclaiming scheme must actually reclaim during the stress"
                );
            }
        }
    };
}

// --- the BST (the paper's primary workload) under every scheme -------------------------
// Every reclaiming scheme must show a non-zero reclaimed count at the end of the stress
// (the safe-API acceptance matrix of the Domain/Guard/ShieldSet port), not just
// consistent bookkeeping; `None` by definition never reclaims.
stress_test!(bst_none, ExternalBst, BstNode, NoReclaim<Node>, ThreadPool, SystemAllocator);
stress_test!(
    bst_debra,
    ExternalBst,
    BstNode,
    Debra<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    bst_debra_plus,
    ExternalBst,
    BstNode,
    DebraPlus<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    bst_hazard_pointers,
    ExternalBst,
    BstNode,
    HazardPointers<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    bst_classic_ebr,
    ExternalBst,
    BstNode,
    ClassicEbr<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    bst_threadscan,
    ExternalBst,
    BstNode,
    ThreadScanLite<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    bst_ibr,
    ExternalBst,
    BstNode,
    Ibr<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(bst_debra_bump, ExternalBst, BstNode, Debra<Node>, ThreadPool, BumpAllocator);
stress_test!(bst_ibr_bump, ExternalBst, BstNode, Ibr<Node>, ThreadPool, BumpAllocator);
// VBR runs only over the type-stable page pool (registration panics elsewhere), and like
// every reclaiming scheme it must show records flowing all the way back.
stress_test!(
    bst_vbr_pagepool,
    ExternalBst,
    BstNode,
    Vbr<Node>,
    PagePool,
    PageAllocator,
    expect_reclaim: true
);

// --- the Harris-Michael list under every scheme -----------------------------------------
stress_test!(list_none, HarrisMichaelList, ListNode, NoReclaim<Node>, ThreadPool, SystemAllocator);
stress_test!(list_debra, HarrisMichaelList, ListNode, Debra<Node>, ThreadPool, SystemAllocator);
stress_test!(
    list_debra_plus,
    HarrisMichaelList,
    ListNode,
    DebraPlus<Node>,
    ThreadPool,
    SystemAllocator
);
stress_test!(
    list_hazard_pointers,
    HarrisMichaelList,
    ListNode,
    HazardPointers<Node>,
    ThreadPool,
    SystemAllocator
);
stress_test!(
    list_classic_ebr,
    HarrisMichaelList,
    ListNode,
    ClassicEbr<Node>,
    ThreadPool,
    SystemAllocator
);
stress_test!(list_ibr, HarrisMichaelList, ListNode, Ibr<Node>, ThreadPool, SystemAllocator);

stress_test!(
    list_threadscan,
    HarrisMichaelList,
    ListNode,
    ThreadScanLite<Node>,
    ThreadPool,
    SystemAllocator
);
stress_test!(
    list_vbr_pagepool,
    HarrisMichaelList,
    ListNode,
    Vbr<Node>,
    PagePool,
    PageAllocator,
    expect_reclaim: true
);

// --- the hash map under every scheme (the acceptance matrix of the hashmap PR) ----------
// Every reclaiming scheme must have a non-zero reclaimed count at the end of the stress,
// not just consistent bookkeeping.
stress_test!(
    hashmap_none,
    LockFreeHashMap,
    HashMapNode,
    NoReclaim<Node>,
    ThreadPool,
    SystemAllocator
);
stress_test!(
    hashmap_debra,
    LockFreeHashMap,
    HashMapNode,
    Debra<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    hashmap_debra_plus,
    LockFreeHashMap,
    HashMapNode,
    DebraPlus<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    hashmap_hazard_pointers,
    LockFreeHashMap,
    HashMapNode,
    HazardPointers<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    hashmap_classic_ebr,
    LockFreeHashMap,
    HashMapNode,
    ClassicEbr<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    hashmap_threadscan,
    LockFreeHashMap,
    HashMapNode,
    ThreadScanLite<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    hashmap_ibr,
    LockFreeHashMap,
    HashMapNode,
    Ibr<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true
);
stress_test!(
    hashmap_debra_bump,
    LockFreeHashMap,
    HashMapNode,
    Debra<Node>,
    ThreadPool,
    BumpAllocator,
    expect_reclaim: true
);
stress_test!(
    hashmap_vbr_pagepool,
    LockFreeHashMap,
    HashMapNode,
    Vbr<Node>,
    PagePool,
    PageAllocator,
    expect_reclaim: true
);

// --- the skip list under every scheme ---------------------------------------------------
// The safe-API port extended the skip list's matrix to the per-access protection schemes
// (HP, ThreadScan) that the raw implementation never ran under: the insert pre-announces
// its private node and pins the target level's predecessor (`ShieldSet` roles `NODE` /
// `TPRED`), which is what makes the post-publication completion phase safe there.
stress_test!(skiplist_none, SkipList, SkipNode, NoReclaim<Node>, ThreadPool, SystemAllocator);
stress_test!(
    skiplist_debra,
    SkipList,
    SkipNode,
    Debra<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true,
    ops: OPS_PER_THREAD_RECLAIM_SKIPLIST
);
stress_test!(
    skiplist_debra_plus,
    SkipList,
    SkipNode,
    DebraPlus<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true,
    ops: OPS_PER_THREAD_RECLAIM_SKIPLIST
);
stress_test!(
    skiplist_hazard_pointers,
    SkipList,
    SkipNode,
    HazardPointers<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true,
    ops: OPS_PER_THREAD_RECLAIM_SKIPLIST
);
stress_test!(
    skiplist_classic_ebr,
    SkipList,
    SkipNode,
    ClassicEbr<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true,
    ops: OPS_PER_THREAD_RECLAIM_SKIPLIST
);
stress_test!(
    skiplist_threadscan,
    SkipList,
    SkipNode,
    ThreadScanLite<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true,
    ops: OPS_PER_THREAD_RECLAIM_SKIPLIST
);
stress_test!(
    skiplist_ibr,
    SkipList,
    SkipNode,
    Ibr<Node>,
    ThreadPool,
    SystemAllocator,
    expect_reclaim: true,
    ops: OPS_PER_THREAD_RECLAIM_SKIPLIST
);
stress_test!(skiplist_ebr_bump, SkipList, SkipNode, ClassicEbr<Node>, ThreadPool, BumpAllocator);
stress_test!(
    skiplist_vbr_pagepool,
    SkipList,
    SkipNode,
    Vbr<Node>,
    PagePool,
    PageAllocator,
    expect_reclaim: true,
    ops: OPS_PER_THREAD_RECLAIM_SKIPLIST
);

/// The 8-thread hash-map acceptance row: oversubscribed (the container has fewer cores),
/// under DEBRA+ so the neutralization machinery is exercised while bucket chains churn.
/// Size consistency and actual reclamation are both required.
#[test]
fn hashmap_debra_plus_8_threads() {
    const WIDE: usize = 8;
    type Node = HashMapNode<u64, u64>;
    type Map = LockFreeHashMap<u64, u64, DebraPlus<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
    let manager = Arc::new(RecordManager::new(WIDE + 1));
    // Few buckets relative to the key range, so chains are long and contended.
    let map: Arc<Map> = Arc::new(LockFreeHashMap::with_buckets(Arc::clone(&manager), 32));

    let mut joins = Vec::new();
    for tid in 0..WIDE {
        let map = Arc::clone(&map);
        joins.push(std::thread::spawn(move || {
            let mut handle = map.register().expect("register worker");
            let mut net: i64 = 0;
            let mut x: u64 = 0xA076_1D64_78BD_642F ^ (tid as u64) << 17;
            for _ in 0..OPS_PER_THREAD_RECLAIM {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let key = (x >> 33) % KEY_RANGE;
                match (x >> 61) % 4 {
                    0 | 1 => {
                        if map.insert(&mut handle, key, key.wrapping_mul(3)) {
                            net += 1;
                        }
                    }
                    2 => {
                        if map.remove(&mut handle, &key) {
                            net -= 1;
                        }
                    }
                    _ => {
                        let _ = map.get(&mut handle, &key);
                    }
                }
            }
            net
        }));
    }
    let net: i64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    assert!(net >= 0);
    let mut handle = map.register().expect("register checker");
    assert_eq!(map.len(&mut handle), net as usize, "final size must match net inserts");
    let stats = manager.reclaimer().stats();
    assert!(stats.retired > 0);
    assert!(stats.reclaimed > 0, "DEBRA+ must reclaim during an 8-thread hash-map run");
    assert!(stats.reclaimed <= stats.retired);
}

// --- the bag-shaped structures (smr-queue) under every scheme ---------------------------
// Queues are the worst-case limbo workload: every successful pop retires a record, so
// garbage generation tracks raw throughput instead of an update ratio.  Every reclaiming
// scheme must show a non-zero reclaimed count; additionally the transfer must be
// lossless (popped ∪ drained == pushed, as multisets) and — for the queue — FIFO per
// producer within each consumer's stream.

/// Runs `ops_per_thread` interleaved pushes/pops on each of [`THREADS`] workers, then
/// drains the bag and checks transfer losslessness.  Pushed values are tagged
/// `(tid << 32) | seq` so duplicates and per-producer order are checkable.
fn bag_stress_n<B>(bag: Arc<B>, ops_per_thread: u64, check_per_producer_fifo: bool)
where
    B: ConcurrentBag<u64> + 'static,
{
    let mut joins = Vec::new();
    for tid in 0..THREADS {
        let bag = Arc::clone(&bag);
        joins.push(std::thread::spawn(move || {
            let mut handle = bag.register().expect("register worker");
            let mut pushed = 0u64;
            let mut popped = Vec::new();
            let mut x: u64 = 0xA076_1D64_78BD_642F ^ (tid as u64) << 17;
            for _ in 0..ops_per_thread {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                // 5/9 pushes: the bag grows over the run, so pops rarely hit empty and
                // the retire pressure (one per successful pop) stays high.
                if (x >> 61) % 9 < 5 {
                    bag.push(&mut handle, ((tid as u64) << 32) | pushed);
                    pushed += 1;
                } else if let Some(v) = bag.pop(&mut handle) {
                    popped.push(v);
                }
            }
            (pushed, popped)
        }));
    }
    let mut pushed_per_thread = [0u64; THREADS];
    let mut all_popped: Vec<u64> = Vec::new();
    let mut streams: Vec<Vec<u64>> = Vec::new();
    for (tid, j) in joins.into_iter().enumerate() {
        let (pushed, popped) = j.join().unwrap();
        pushed_per_thread[tid] = pushed;
        streams.push(popped.clone());
        all_popped.extend(popped);
    }
    // Drain the remainder on a fresh handle.
    let mut handle = bag.register().expect("register drainer");
    while let Some(v) = bag.pop(&mut handle) {
        all_popped.push(v);
    }
    // Multiset equality with the pushed values: every value out exactly once.
    let total_pushed: u64 = pushed_per_thread.iter().sum();
    assert_eq!(all_popped.len() as u64, total_pushed, "pushed and popped counts must match");
    all_popped.sort_unstable();
    for (tid, &pushed) in pushed_per_thread.iter().enumerate() {
        for seq in 0..pushed {
            let v = ((tid as u64) << 32) | seq;
            assert!(
                all_popped.binary_search(&v).is_ok(),
                "value {v:#x} (producer {tid}, seq {seq}) was lost"
            );
        }
    }
    // Multiset sizes match and every expected value is present => no duplicates either.
    if check_per_producer_fifo {
        for stream in &streams {
            let mut last = [None::<u64>; THREADS];
            for v in stream {
                let (p, seq) = ((v >> 32) as usize, v & 0xFFFF_FFFF);
                if let Some(prev) = last[p] {
                    assert!(seq > prev, "FIFO violated for producer {p}: {seq} after {prev}");
                }
                last[p] = Some(seq);
            }
        }
    }
}

macro_rules! bag_stress_test {
    ($name:ident, $structure:ident, $node:ident, $reclaimer:ty, $pool:ident, $alloc:ident,
     fifo: $fifo:expr) => {
        bag_stress_test!($name, $structure, $node, $reclaimer, $pool, $alloc,
            fifo: $fifo, expect_reclaim: false, ops: OPS_PER_THREAD);
    };
    ($name:ident, $structure:ident, $node:ident, $reclaimer:ty, $pool:ident, $alloc:ident,
     fifo: $fifo:expr, expect_reclaim: $expect_reclaim:expr) => {
        bag_stress_test!($name, $structure, $node, $reclaimer, $pool, $alloc,
            fifo: $fifo, expect_reclaim: $expect_reclaim, ops: OPS_PER_THREAD_RECLAIM);
    };
    ($name:ident, $structure:ident, $node:ident, $reclaimer:ty, $pool:ident, $alloc:ident,
     fifo: $fifo:expr, expect_reclaim: $expect_reclaim:expr, ops: $ops:expr) => {
        #[test]
        fn $name() {
            type Node = $node<u64>;
            type Bag = $structure<u64, $reclaimer, $pool<Node>, $alloc<Node>>;
            let manager = Arc::new(RecordManager::new(THREADS + 1));
            let bag: Arc<Bag> = Arc::new($structure::new(Arc::clone(&manager)));
            bag_stress_n(Arc::clone(&bag), $ops, $fifo);
            let stats = manager.reclaimer().stats();
            assert!(stats.reclaimed <= stats.retired);
            if $expect_reclaim {
                assert!(stats.retired > 0, "pops must retire records");
                assert!(
                    stats.reclaimed > 0,
                    "a reclaiming scheme must actually reclaim during the stress"
                );
            }
        }
    };
}

bag_stress_test!(queue_none, MsQueue, QueueNode, NoReclaim<Node>, ThreadPool, SystemAllocator,
    fifo: true);
bag_stress_test!(queue_debra, MsQueue, QueueNode, Debra<Node>, ThreadPool, SystemAllocator,
    fifo: true, expect_reclaim: true);
bag_stress_test!(queue_debra_plus, MsQueue, QueueNode, DebraPlus<Node>, ThreadPool,
    SystemAllocator, fifo: true, expect_reclaim: true);
bag_stress_test!(queue_hazard_pointers, MsQueue, QueueNode, HazardPointers<Node>, ThreadPool,
    SystemAllocator, fifo: true, expect_reclaim: true);
bag_stress_test!(queue_classic_ebr, MsQueue, QueueNode, ClassicEbr<Node>, ThreadPool,
    SystemAllocator, fifo: true, expect_reclaim: true);
bag_stress_test!(queue_threadscan, MsQueue, QueueNode, ThreadScanLite<Node>, ThreadPool,
    SystemAllocator, fifo: true, expect_reclaim: true);
bag_stress_test!(queue_ibr, MsQueue, QueueNode, Ibr<Node>, ThreadPool, SystemAllocator,
    fifo: true, expect_reclaim: true);
bag_stress_test!(queue_debra_bump, MsQueue, QueueNode, Debra<Node>, ThreadPool, BumpAllocator,
    fifo: true, expect_reclaim: true);

// --- the queue under every scheme on the page-pool allocation pipeline -----------------
// Same workload and invariants as the rows above, but composed with `smr-pagepool`
// (type-stable pages + per-thread magazines + global overflow) instead of malloc: the
// retire → pool → magazine → reuse cycle runs at full stress concurrency, and every
// reclaiming scheme must still show `reclaimed > 0` — records flow all the way back.
bag_stress_test!(queue_none_pagepool, MsQueue, QueueNode, NoReclaim<Node>, PagePool,
    PageAllocator, fifo: true);
bag_stress_test!(queue_debra_pagepool, MsQueue, QueueNode, Debra<Node>, PagePool,
    PageAllocator, fifo: true, expect_reclaim: true);
bag_stress_test!(queue_debra_plus_pagepool, MsQueue, QueueNode, DebraPlus<Node>, PagePool,
    PageAllocator, fifo: true, expect_reclaim: true);
bag_stress_test!(queue_hazard_pointers_pagepool, MsQueue, QueueNode, HazardPointers<Node>,
    PagePool, PageAllocator, fifo: true, expect_reclaim: true);
bag_stress_test!(queue_classic_ebr_pagepool, MsQueue, QueueNode, ClassicEbr<Node>, PagePool,
    PageAllocator, fifo: true, expect_reclaim: true);
bag_stress_test!(queue_threadscan_pagepool, MsQueue, QueueNode, ThreadScanLite<Node>, PagePool,
    PageAllocator, fifo: true, expect_reclaim: true);
bag_stress_test!(queue_ibr_pagepool, MsQueue, QueueNode, Ibr<Node>, PagePool, PageAllocator,
    fifo: true, expect_reclaim: true);
bag_stress_test!(queue_vbr_pagepool, MsQueue, QueueNode, Vbr<Node>, PagePool, PageAllocator,
    fifo: true, expect_reclaim: true);

bag_stress_test!(stack_none, TreiberStack, StackNode, NoReclaim<Node>, ThreadPool,
    SystemAllocator, fifo: false);
bag_stress_test!(stack_debra, TreiberStack, StackNode, Debra<Node>, ThreadPool,
    SystemAllocator, fifo: false, expect_reclaim: true);
bag_stress_test!(stack_debra_plus, TreiberStack, StackNode, DebraPlus<Node>, ThreadPool,
    SystemAllocator, fifo: false, expect_reclaim: true);
bag_stress_test!(stack_hazard_pointers, TreiberStack, StackNode, HazardPointers<Node>,
    ThreadPool, SystemAllocator, fifo: false, expect_reclaim: true);
bag_stress_test!(stack_classic_ebr, TreiberStack, StackNode, ClassicEbr<Node>, ThreadPool,
    SystemAllocator, fifo: false, expect_reclaim: true);
bag_stress_test!(stack_threadscan, TreiberStack, StackNode, ThreadScanLite<Node>, ThreadPool,
    SystemAllocator, fifo: false, expect_reclaim: true);
bag_stress_test!(stack_ibr, TreiberStack, StackNode, Ibr<Node>, ThreadPool, SystemAllocator,
    fifo: false, expect_reclaim: true);
bag_stress_test!(stack_ebr_bump, TreiberStack, StackNode, ClassicEbr<Node>, ThreadPool,
    BumpAllocator, fifo: false, expect_reclaim: true);

// --- the stack under every scheme on the page-pool allocation pipeline -----------------
bag_stress_test!(stack_none_pagepool, TreiberStack, StackNode, NoReclaim<Node>, PagePool,
    PageAllocator, fifo: false);
bag_stress_test!(stack_debra_pagepool, TreiberStack, StackNode, Debra<Node>, PagePool,
    PageAllocator, fifo: false, expect_reclaim: true);
bag_stress_test!(stack_debra_plus_pagepool, TreiberStack, StackNode, DebraPlus<Node>, PagePool,
    PageAllocator, fifo: false, expect_reclaim: true);
bag_stress_test!(stack_hazard_pointers_pagepool, TreiberStack, StackNode, HazardPointers<Node>,
    PagePool, PageAllocator, fifo: false, expect_reclaim: true);
bag_stress_test!(stack_classic_ebr_pagepool, TreiberStack, StackNode, ClassicEbr<Node>, PagePool,
    PageAllocator, fifo: false, expect_reclaim: true);
bag_stress_test!(stack_threadscan_pagepool, TreiberStack, StackNode, ThreadScanLite<Node>,
    PagePool, PageAllocator, fifo: false, expect_reclaim: true);
bag_stress_test!(stack_ibr_pagepool, TreiberStack, StackNode, Ibr<Node>, PagePool,
    PageAllocator, fifo: false, expect_reclaim: true);
bag_stress_test!(stack_vbr_pagepool, TreiberStack, StackNode, Vbr<Node>, PagePool,
    PageAllocator, fifo: false, expect_reclaim: true);

/// The 8-thread queue acceptance row: oversubscribed (the container has fewer cores),
/// under DEBRA+ so neutralizations fire while the head churns at full drain rate.
/// Lossless transfer and actual reclamation are both required.
#[test]
fn queue_debra_plus_8_threads() {
    const WIDE: usize = 8;
    type Node = QueueNode<u64>;
    type Queue = MsQueue<u64, DebraPlus<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
    let manager = Arc::new(RecordManager::new(WIDE + 1));
    let queue: Arc<Queue> = Arc::new(MsQueue::new(Arc::clone(&manager)));

    let mut joins = Vec::new();
    for tid in 0..WIDE {
        let queue = Arc::clone(&queue);
        joins.push(std::thread::spawn(move || {
            let mut handle = queue.register().expect("register worker");
            let mut pushed = 0u64;
            let mut popped = 0u64;
            let mut x: u64 = 0xA076_1D64_78BD_642F ^ (tid as u64) << 17;
            for _ in 0..OPS_PER_THREAD_RECLAIM {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if (x >> 61).is_multiple_of(2) {
                    queue.push(&mut handle, ((tid as u64) << 32) | pushed);
                    pushed += 1;
                } else if queue.pop(&mut handle).is_some() {
                    popped += 1;
                }
            }
            (pushed, popped)
        }));
    }
    let (mut pushed, mut popped) = (0u64, 0u64);
    for j in joins {
        let (p, q) = j.join().unwrap();
        pushed += p;
        popped += q;
    }
    let mut handle = queue.register().expect("register drainer");
    let mut drained = 0u64;
    while queue.pop(&mut handle).is_some() {
        drained += 1;
    }
    assert_eq!(pushed, popped + drained, "every pushed value must come out exactly once");
    let stats = manager.reclaimer().stats();
    assert!(stats.retired > 0);
    assert!(stats.reclaimed > 0, "DEBRA+ must reclaim during an 8-thread queue run");
    assert!(stats.reclaimed <= stats.retired);
}

/// DEBRA+ neutralization-mid-dequeue recovery: with an aggressive configuration (16-record
/// limbo blocks, suspicion after one block) and a laggard thread that blocks the epoch by
/// holding a pinned guard, churn workers neutralize the laggard — and, since real POSIX
/// signals land at arbitrary points, each other — between a dequeue's protection window
/// and its decision CAS.  The recovery path (unwind with `Restart`, drop the cloned
/// value, acknowledge, restart the body) must deliver every value exactly once.
#[test]
fn queue_debra_plus_neutralization_mid_dequeue_recovers() {
    use debra_repro::debra::{Allocator as _, DebraConfig, DebraPlusConfig, Pool as _};
    use debra_repro::neutralize::SignalDriver;
    use std::sync::atomic::{AtomicBool, Ordering};

    const WORKERS: usize = 3;
    type Node = QueueNode<u64>;
    type Queue = MsQueue<u64, DebraPlus<Node>, ThreadPool<Node>, SystemAllocator<Node>>;

    let config = DebraPlusConfig {
        debra: DebraConfig { check_threshold: 1, increment_threshold: 1, block_capacity: 16 },
        suspect_threshold_blocks: 1,
        scan_threshold_blocks: 1,
        rprotect_slots: 16,
    };
    let reclaimer =
        Arc::new(DebraPlus::with_config(WORKERS + 2, config, SignalDriver::best_available()));
    let pool = Arc::new(ThreadPool::new(WORKERS + 2));
    let alloc = Arc::new(SystemAllocator::new(WORKERS + 2));
    let manager = Arc::new(RecordManager::from_parts(reclaimer, pool, alloc));
    let queue: Arc<Queue> = Arc::new(MsQueue::new(Arc::clone(&manager)));

    let stop = Arc::new(AtomicBool::new(false));
    // The laggard: repeatedly holds a pinned guard (blocking the epoch) without checking
    // for neutralization, then runs dequeues — its first checkpoint after being
    // neutralized observes the flag and takes the recovery path into a fresh dequeue.
    let laggard = {
        let queue = Arc::clone(&queue);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut handle = queue.register().expect("register laggard");
            let mut popped = 0u64;
            while !stop.load(Ordering::Acquire) {
                {
                    let _pin = handle.pin();
                    for _ in 0..50 {
                        std::thread::yield_now();
                    }
                }
                for _ in 0..20 {
                    if queue.pop(&mut handle).is_some() {
                        popped += 1;
                    }
                }
            }
            (0u64, popped)
        })
    };

    let mut joins = Vec::new();
    for tid in 0..WORKERS {
        let queue = Arc::clone(&queue);
        joins.push(std::thread::spawn(move || {
            let mut handle = queue.register().expect("register worker");
            let mut pushed = 0u64;
            let mut popped = 0u64;
            let mut x: u64 = 0x9E37_79B9_7F4A_7C15 ^ (tid as u64) << 21;
            for _ in 0..OPS_PER_THREAD_RECLAIM {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if (x >> 61).is_multiple_of(2) {
                    queue.push(&mut handle, ((tid as u64 + 1) << 32) | pushed);
                    pushed += 1;
                } else if queue.pop(&mut handle).is_some() {
                    popped += 1;
                }
            }
            (pushed, popped)
        }));
    }
    let (mut pushed, mut popped) = (0u64, 0u64);
    for j in joins {
        let (p, q) = j.join().unwrap();
        pushed += p;
        popped += q;
    }
    stop.store(true, Ordering::Release);
    let (_, laggard_popped) = laggard.join().unwrap();
    popped += laggard_popped;

    let mut handle = queue.register().expect("register drainer");
    let mut drained = 0u64;
    while queue.pop(&mut handle).is_some() {
        drained += 1;
    }
    assert_eq!(
        pushed,
        popped + drained,
        "neutralization-interrupted dequeues must neither lose nor duplicate values"
    );
    let stats = manager.reclaimer().stats();
    assert!(
        stats.neutralized > 0,
        "the aggressive configuration must neutralize at least once (laggard blocks the epoch)"
    );
    assert!(stats.reclaimed > 0, "DEBRA+ must reclaim past the neutralized laggard");
    assert!(stats.reclaimed <= stats.retired);
}

/// The acceptance bar for IBR: the BST stress passes at 8 worker threads, and IBR must
/// actually have reclaimed records along the way (not just parked them in limbo).
#[test]
fn bst_ibr_8_threads() {
    const WIDE: usize = 8;
    type Node = BstNode<u64, u64>;
    type Map = ExternalBst<u64, u64, Ibr<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
    let manager = Arc::new(RecordManager::new(WIDE + 1));
    let map: Arc<Map> = Arc::new(ExternalBst::new(Arc::clone(&manager)));

    let mut joins = Vec::new();
    for tid in 0..WIDE {
        let map = Arc::clone(&map);
        joins.push(std::thread::spawn(move || {
            let mut handle = map.register().expect("register worker");
            let mut net: i64 = 0;
            let mut x: u64 = 0xA076_1D64_78BD_642F ^ (tid as u64) << 17;
            for _ in 0..OPS_PER_THREAD {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let key = (x >> 33) % KEY_RANGE;
                match (x >> 61) % 4 {
                    0 | 1 => {
                        if map.insert(&mut handle, key, key.wrapping_mul(3)) {
                            net += 1;
                        }
                    }
                    2 => {
                        if map.remove(&mut handle, &key) {
                            net -= 1;
                        }
                    }
                    _ => {
                        let _ = map.get(&mut handle, &key);
                    }
                }
            }
            net
        }));
    }
    let net: i64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    assert!(net >= 0);
    let mut handle = map.register().expect("register checker");
    assert_eq!(map.len(&mut handle), net as usize, "final size must match net inserts");
    let stats = manager.reclaimer().stats();
    assert!(stats.retired > 0);
    assert!(stats.reclaimed > 0, "IBR must reclaim during an 8-thread run");
    assert!(stats.reclaimed <= stats.retired);
}

//! Integration tests for the safe guard layer: `Domain` slot leasing and recycling,
//! guard/shield semantics, and the Harris–Michael list driven purely through the safe API
//! under every reclamation scheme.

use std::ptr::NonNull;
use std::sync::Arc;

use debra_repro::debra::{
    Atomic, Debra, DebraPlus, Domain, Reclaimer, RecordManager, RegistrationError, Restart,
};
use debra_repro::lockfree_ds::{ConcurrentMap, HarrisMichaelList, ListNode, SkipList, SkipNode};
use debra_repro::smr_alloc::{SystemAllocator, ThreadPool};
use debra_repro::smr_baselines::{ClassicEbr, HazardPointers, NoReclaim, ThreadScanLite};
use debra_repro::smr_ibr::Ibr;

/// Satellite regression: a thread slot must be reusable after its handle is dropped —
/// `register(tid)` must not error forever once a slot was used.  Checked for every scheme
/// at the Record Manager level (register → drop → re-register, thrice for good measure).
macro_rules! slot_reuse_after_drop {
    ($name:ident, $recl:ty) => {
        #[test]
        fn $name() {
            let manager: Arc<RecordManager<u64, $recl, ThreadPool<u64>, SystemAllocator<u64>>> =
                Arc::new(RecordManager::new(2));
            for _ in 0..3 {
                let t0 = manager.register(0).expect("slot 0 must be registerable");
                assert!(matches!(
                    manager.register(0),
                    Err(RegistrationError::AlreadyRegistered { tid: 0 })
                ));
                // Auto-registration skips the taken slot and leases the next one.
                let t1 = manager.register_auto().expect("a free slot remains");
                assert_eq!(t1.tid(), 1);
                assert!(matches!(
                    manager.register_auto(),
                    Err(RegistrationError::Exhausted { max_threads: 2 })
                ));
                drop(t0);
                drop(t1);
            }
            // After the final drops every slot is free again.
            assert_eq!(manager.register_auto().expect("slot recycled").tid(), 0);
        }
    };
}

slot_reuse_after_drop!(slot_reuse_none, NoReclaim<u64>);
slot_reuse_after_drop!(slot_reuse_debra, Debra<u64>);
slot_reuse_after_drop!(slot_reuse_debra_plus, DebraPlus<u64>);
slot_reuse_after_drop!(slot_reuse_hazard_pointers, HazardPointers<u64>);
slot_reuse_after_drop!(slot_reuse_classic_ebr, ClassicEbr<u64>);
slot_reuse_after_drop!(slot_reuse_threadscan, ThreadScanLite<u64>);
slot_reuse_after_drop!(slot_reuse_ibr, Ibr<u64>);

type DebraDomain = Domain<u64, Debra<u64>, ThreadPool<u64>, SystemAllocator<u64>>;

/// Domain-level recycling: dropping a thread's last handle releases its leased slot, both
/// on the same thread and across thread exits.
#[test]
fn domain_releases_slots_for_reuse() {
    let domain: DebraDomain = Domain::new(1); // a single slot makes reuse observable
    for _ in 0..3 {
        let handle = domain.handle();
        let _ = handle.tid();
        drop(handle); // slot released here, not at thread exit
    }
    // Other threads can take the slot once this thread's lease is gone.
    for _ in 0..2 {
        let domain2 = domain.clone();
        std::thread::spawn(move || {
            let guard = domain2.pin();
            let _ = guard.check();
        })
        .join()
        .expect("worker with leased slot");
    }
    // ... and the main thread can lease it again afterwards.
    let handle = domain.handle();
    assert_eq!(handle.tid(), 0);
}

/// Capacity exhaustion surfaces as a typed error, and clears when a lease is released.
#[test]
fn domain_reports_exhaustion() {
    let domain: DebraDomain = Domain::new(1);
    let handle = domain.handle();
    let domain2 = domain.clone();
    std::thread::spawn(move || {
        assert!(matches!(
            domain2.try_handle(),
            Err(RegistrationError::Exhausted { max_threads: 1 })
        ));
    })
    .join()
    .expect("exhaustion observer");
    drop(handle);
    let domain3 = domain.clone();
    std::thread::spawn(move || {
        let _ = domain3.try_handle().expect("slot free after the main thread released it");
    })
    .join()
    .expect("worker after release");
}

/// Guards are reentrant on one thread and a handle's repeated pins share one lease.
#[test]
fn guards_are_reentrant_and_share_a_lease() {
    let domain: DebraDomain = Domain::new(1); // one slot: any double-lease would error
    let handle = domain.handle();
    let outer = handle.pin();
    let inner = domain.pin(); // nested pin through the domain: same lease, deeper pin
    assert_eq!(outer.tid(), inner.tid());
    assert!(outer.check().is_ok());
    drop(inner);
    assert!(outer.check().is_ok(), "outer guard must survive the inner one");
}

/// `Domain::run` retries the body on `Restart` (the DEBRA+ recovery loop shape).
#[test]
fn run_retries_on_restart() {
    let domain: DebraDomain = Domain::new(1);
    let mut attempts = 0;
    let out = domain.run(|guard| {
        attempts += 1;
        guard.check()?;
        if attempts < 3 {
            Err(Restart)
        } else {
            Ok(attempts)
        }
    });
    assert_eq!(out, 3);
}

/// Allocate-then-discard recycles through the pool without publication — entirely safe
/// code (the `Owned` uniqueness is what makes `discard` safe).
#[test]
fn alloc_discard_roundtrip() {
    let domain: DebraDomain = Domain::new(1);
    let guard = domain.pin();
    for i in 0..64u64 {
        let owned = guard.alloc(i);
        assert_eq!(*owned, i);
        guard.discard(owned);
    }
}

const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 3_000;
const KEY_RANGE: u64 = 64;

/// The cross-scheme smoke test of the acceptance criteria: the list driven through only
/// the safe API (automatic slot leasing, guard-pinned operations) under every scheme,
/// with the usual net-inserts == final-size consistency check.
macro_rules! safe_list_under {
    ($name:ident, $recl:ty) => {
        #[test]
        fn $name() {
            type Node = ListNode<u64, u64>;
            type List = HarrisMichaelList<u64, u64, $recl, ThreadPool<Node>, SystemAllocator<Node>>;
            let domain: Domain<Node, $recl, ThreadPool<Node>, SystemAllocator<Node>> =
                Domain::new(THREADS + 1);
            let list: Arc<List> = Arc::new(HarrisMichaelList::in_domain(domain));
            let mut joins = Vec::new();
            for tid in 0..THREADS {
                let list = Arc::clone(&list);
                joins.push(std::thread::spawn(move || {
                    // No tid bookkeeping: the domain leases a slot for this thread.
                    let mut handle = list.domain().try_handle().expect("lease worker slot");
                    let mut net: i64 = 0;
                    let mut x: u64 = 0x9E3779B97F4A7C15 ^ ((tid as u64) << 21);
                    for _ in 0..OPS_PER_THREAD {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        let key = (x >> 33) % KEY_RANGE;
                        match (x >> 61) % 4 {
                            0 | 1 => {
                                if list.insert(&mut handle, key, key) {
                                    net += 1;
                                }
                            }
                            2 => {
                                if list.remove(&mut handle, &key) {
                                    net -= 1;
                                }
                            }
                            _ => {
                                let _ = list.get(&mut handle, &key);
                            }
                        }
                    }
                    net
                }));
            }
            let net: i64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
            assert!(net >= 0);
            let mut handle = list.domain().try_handle().expect("lease checker slot");
            assert_eq!(list.len(&mut handle), net as usize, "final size must match net inserts");
            let stats = list.manager().reclaimer().stats();
            assert!(stats.reclaimed <= stats.retired);
        }
    };
}

safe_list_under!(safe_list_none, NoReclaim<ListNode<u64, u64>>);
safe_list_under!(safe_list_debra, Debra<ListNode<u64, u64>>);
safe_list_under!(safe_list_debra_plus, DebraPlus<ListNode<u64, u64>>);
safe_list_under!(safe_list_hazard_pointers, HazardPointers<ListNode<u64, u64>>);
safe_list_under!(safe_list_classic_ebr, ClassicEbr<ListNode<u64, u64>>);
safe_list_under!(safe_list_threadscan, ThreadScanLite<ListNode<u64, u64>>);
safe_list_under!(safe_list_ibr, Ibr<ListNode<u64, u64>>);

type HpDomain = Domain<u64, HazardPointers<u64>, ThreadPool<u64>, SystemAllocator<u64>>;
type DebraPlusDomain = Domain<u64, DebraPlus<u64>, ThreadPool<u64>, SystemAllocator<u64>>;

/// `Shield::protect_anchored` announces the given record while validating a *different*
/// link (the MS-queue head/next window): the announcement must be observable through
/// the hazard-pointer scan on success, null must pass through unprotected, and a moved
/// anchor must fail with `Restart` (the record may already be retired).
#[test]
fn protect_anchored_validates_the_anchor_link() {
    let domain: HpDomain = Domain::new(1);
    let hp = Arc::clone(domain.manager().reclaimer());
    let anchor = Atomic::null();
    let guard = domain.pin();
    let sentinel = guard.alloc(7u64);
    assert!(anchor
        .compare_exchange_owned(
            debra_repro::debra::Shared::null(),
            sentinel,
            std::sync::atomic::Ordering::AcqRel,
            std::sync::atomic::Ordering::Acquire,
            &guard,
        )
        .is_ok());
    let anchored = anchor.load(std::sync::atomic::Ordering::Acquire, &guard);
    // A standalone record playing the successor role (kept as an un-published Owned so
    // the test can discard it safely at the end).
    let successor = guard.alloc(8u64);
    let successor_shared = successor.shared();
    let nn = |s: debra_repro::debra::Shared<'_, u64>| NonNull::new(s.as_ptr()).unwrap();

    let mut shield = guard.shield();
    // Anchor holds the expected word: the protect succeeds and announces the record.
    let protected = shield
        .protect_anchored(successor_shared, &anchor, anchored)
        .expect("anchor unchanged: protect must succeed");
    assert_eq!(protected.as_ptr(), successor_shared.as_ptr());
    assert!(hp.is_protected_by_any(nn(successor_shared)));

    // Null passes through without an announcement (nothing to protect).
    let mut null_shield = guard.shield();
    let null = null_shield
        .protect_anchored(debra_repro::debra::Shared::null(), &anchor, anchored)
        .expect("null passes through");
    assert!(null.is_null());

    // Move the anchor (clear it): the same protect now fails with Restart.
    let sentinel_ptr = anchored.as_ptr();
    assert!(anchor
        .compare_exchange(
            anchored,
            debra_repro::debra::Shared::null(),
            std::sync::atomic::Ordering::AcqRel,
            std::sync::atomic::Ordering::Acquire,
            &guard,
        )
        .is_ok());
    assert_eq!(
        shield.protect_anchored(successor_shared, &anchor, anchored),
        Err(Restart),
        "a moved anchor must refuse the protection"
    );

    drop(shield);
    drop(null_shield);
    assert!(!hp.is_protected_by_any(nn(successor_shared)), "dropping the shield releases");
    guard.discard(successor);
    drop(guard);
    // Teardown: the record the anchor used to hold is freed with exclusive access.
    domain.free_reachable(sentinel_ptr, |_| std::ptr::null_mut());
}

/// `ShieldSet::rotate` permutes *roles*, not announcements: every record that stays in
/// the window stays protected across the rotation (observed through the hazard-pointer
/// scheme's global announcement scan), and a subsequent protect into the role that
/// received the freed slot overwrites the stale announcement — releasing exactly the
/// record that left the window, nothing else.
#[test]
fn shield_set_rotation_keeps_window_protected() {
    let domain: HpDomain = Domain::new(1);
    let hp = Arc::clone(domain.manager().reclaimer());
    let link_a = Atomic::null();
    let link_b = Atomic::null();
    let link_c = Atomic::null();
    let guard = domain.pin();
    for (link, v) in [(&link_a, 1u64), (&link_b, 2), (&link_c, 3)] {
        let owned = guard.alloc(v);
        assert!(link
            .compare_exchange_owned(
                debra_repro::debra::Shared::null(),
                owned,
                std::sync::atomic::Ordering::AcqRel,
                std::sync::atomic::Ordering::Acquire,
                &guard,
            )
            .is_ok());
    }
    let nn = |s: debra_repro::debra::Shared<'_, u64>| NonNull::new(s.as_ptr()).unwrap();

    let mut set = set_of(&guard);
    let a = set.protect(0, &link_a).expect("protect a");
    let b = set.protect(1, &link_b).expect("protect b");
    assert!(hp.is_protected_by_any(nn(a)));
    assert!(hp.is_protected_by_any(nn(b)));

    // Rotate the three roles: a and b stay protected (their slots never move).
    set.rotate([0, 1, 2]);
    assert!(hp.is_protected_by_any(nn(a)), "rotation must not drop a's announcement");
    assert!(hp.is_protected_by_any(nn(b)), "rotation must not drop b's announcement");

    // After rotate([0,1,2]), role 2 holds role 0's old slot — the one announcing `a`.
    // Protecting c there overwrites exactly that announcement.
    let c = set.protect(2, &link_c).expect("protect c");
    assert!(!hp.is_protected_by_any(nn(a)), "a left the window");
    assert!(hp.is_protected_by_any(nn(b)));
    assert!(hp.is_protected_by_any(nn(c)));

    // Dropping the set releases every slot.
    drop(set);
    for s in [a, b, c] {
        assert!(!hp.is_protected_by_any(nn(s)));
    }
    drop(guard);
    for link in [link_a, link_b, link_c] {
        domain.free_reachable(link.load_ptr(std::sync::atomic::Ordering::Relaxed), |_| {
            std::ptr::null_mut()
        });
    }
}

/// Helper pinning the set size used by the rotation test (type inference aid).
fn set_of<'g>(
    guard: &'g debra_repro::debra::Guard<
        u64,
        HazardPointers<u64>,
        ThreadPool<u64>,
        SystemAllocator<u64>,
    >,
) -> debra_repro::debra::ShieldSet<
    'g,
    3,
    u64,
    HazardPointers<u64>,
    ThreadPool<u64>,
    SystemAllocator<u64>,
> {
    guard.shield_set::<3>()
}

/// The per-thread shield-slot pool is finite: leasing more than 32 slots at once panics
/// rather than silently sharing a slot (which would drop a protection).
#[test]
#[should_panic(expected = "too many live Shields")]
fn shield_set_exhaustion_panics() {
    let domain: HpDomain = Domain::new(1);
    let guard = domain.pin();
    let _set = guard.shield_set::<33>();
}

/// The `Recovery` scope is the RAII bracket of DEBRA+'s restricted hazard pointers: a
/// protection announced in the scope survives a [`Restart`] recovery cycle (the
/// completion-phase protocol — `Guard::recover` must *not* release it) and is released
/// when the scope drops.
#[test]
fn recovery_scope_survives_restart_and_releases_on_drop() {
    let domain: DebraPlusDomain = Domain::new(2);
    let handle = domain.handle();
    let guard = domain.pin();
    let owned = guard.alloc(7u64);

    let recovery = handle.recovery();
    let token = recovery.protect(owned.shared());
    assert!(recovery.is_protected(owned.shared()));

    let mut attempts = 0;
    handle.run(|g| {
        attempts += 1;
        if attempts == 1 {
            // Unwinding with Restart runs the recovery protocol; the restricted
            // protection must survive it (an interrupted insert still needs its
            // published record covered in the next attempt).
            return Err(Restart);
        }
        let shared = token.get(g);
        assert!(recovery.is_protected(shared), "restricted HP must survive the restart");
        Ok(())
    });
    assert_eq!(attempts, 2);

    drop(recovery);
    // A fresh scope observes that the drop released everything (RUnprotectAll).
    let fresh = handle.recovery();
    assert!(!fresh.is_protected(owned.shared()));
    drop(fresh);
    guard.discard(owned);
}

/// Pins the helping policy per scheme: helping (unvalidated traversal of another
/// operation's records) is an epoch-style capability.  Schemes whose safety argument is
/// tied to their own validated accesses — hazard pointers, ThreadScan, **and IBR** —
/// must refuse it.  Regression for the seed's external-BST livelock: the old
/// `protection_slots() > 0` gate let IBR help, and a stale helper's child CAS racing
/// record recycling could resurrect an already-removed marked node, permanently wedging
/// every IBR-validated traversal through it.
#[test]
fn helping_policy_matches_the_scheme_taxonomy() {
    fn helping<R: Reclaimer<u64>>() -> bool {
        let domain: Domain<u64, R, ThreadPool<u64>, SystemAllocator<u64>> = Domain::new(1);
        let guard = domain.pin();
        guard.helping_allowed()
    }
    assert!(helping::<NoReclaim<u64>>());
    assert!(helping::<Debra<u64>>());
    assert!(helping::<DebraPlus<u64>>());
    assert!(helping::<ClassicEbr<u64>>());
    assert!(!helping::<HazardPointers<u64>>());
    assert!(!helping::<ThreadScanLite<u64>>());
    assert!(
        !helping::<Ibr<u64>>(),
        "IBR must not help: its reservation covers only validated reads"
    );
}

/// Two live `Recovery` scopes on one thread would let the inner drop release the outer
/// scope's protections (`RUnprotectAll` is all-or-nothing), so nesting panics.
#[test]
#[should_panic(expected = "Recovery scopes must not nest")]
fn recovery_scopes_do_not_nest() {
    let domain: DebraDomain = Domain::new(1);
    let handle = domain.handle();
    let _outer = handle.recovery();
    let _inner = handle.recovery();
}

/// The skip list's safe-layer entry points: construction in a domain and automatic slot
/// leasing through it (the operation bodies run fully on the guard API).
#[test]
fn skiplist_domain_entry_points() {
    type Node = SkipNode<u64, u64>;
    type List = SkipList<u64, u64, Debra<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
    let domain: Domain<Node, Debra<Node>, ThreadPool<Node>, SystemAllocator<Node>> = Domain::new(2);
    let list: List = SkipList::in_domain(domain);
    let mut a = list.register().expect("auto slot 0");
    let b = list.register().expect("same thread shares the lease");
    assert_eq!(a.tid(), b.tid(), "one lease per (thread, domain) pair");
    assert!(list.insert(&mut a, 1, 10));
    assert!(list.contains(&mut a, &1));
    drop(b);
    drop(a);
    let mut c = list.register().expect("slots recycled");
    assert!(list.remove(&mut c, &1));
}

//! Failure injection: a thread stalls inside a data structure operation.
//!
//! Checks the paper's central claim (Section 5): under DEBRA a stalled process prevents all
//! reclamation, while under DEBRA+ it is neutralized and the number of unreclaimed records
//! stays bounded.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use debra_repro::debra::{CountingSink, Debra, DebraPlus, ReclaimSink, Reclaimer, ReclaimerThread};
use std::ptr::NonNull;

struct FreeSink;
impl ReclaimSink<u64> for FreeSink {
    fn accept(&mut self, record: NonNull<u64>) {
        // SAFETY: test records are leaked boxes reclaimed exactly once.
        unsafe { drop(Box::from_raw(record.as_ptr())) }
    }
}

/// Runs the stalled-thread scenario and returns (peak pending, total reclaimed,
/// neutralizations).
fn run_with_staller<R: Reclaimer<u64>>(retires: u64) -> (u64, u64, u64) {
    let global = Arc::new(R::new(2));
    let stop = Arc::new(AtomicBool::new(false));
    let started = Arc::new(AtomicBool::new(false));

    let staller = {
        let global = Arc::clone(&global);
        let stop = Arc::clone(&stop);
        let started = Arc::clone(&started);
        std::thread::spawn(move || {
            let mut t = R::register(&global, 1).expect("register staller");
            let mut sink = CountingSink::default();
            let _ = t.leave_qstate(&mut sink);
            started.store(true, Ordering::Release);
            while !stop.load(Ordering::Acquire) {
                if t.check().is_err() {
                    t.begin_recovery();
                    let _ = t.leave_qstate(&mut sink);
                }
                // Yield, don't just spin: single-core hosts need the other threads to run.
                std::thread::yield_now();
            }
            t.enter_qstate();
        })
    };
    while !started.load(Ordering::Acquire) {
        std::thread::yield_now();
    }

    let mut worker = R::register(&global, 0).expect("register worker");
    let mut sink = FreeSink;
    let mut peak = 0u64;
    for i in 0..retires {
        let _ = worker.leave_qstate(&mut sink);
        let record = NonNull::from(Box::leak(Box::new(i)));
        // SAFETY: never published; retired exactly once.
        unsafe { worker.retire(record, &mut sink) };
        worker.enter_qstate();
        if i % 1000 == 0 {
            peak = peak.max(global.stats().pending);
        }
    }
    peak = peak.max(global.stats().pending);
    stop.store(true, Ordering::Release);
    staller.join().unwrap();

    let stats = global.stats();
    drop(worker);
    for r in global.drain_orphans() {
        // SAFETY: orphans are the leaked test records, now exclusively owned.
        unsafe { drop(Box::from_raw(r.as_ptr())) };
    }
    (peak, stats.reclaimed, stats.neutralized)
}

#[test]
fn debra_cannot_reclaim_past_a_stalled_thread() {
    let retires = 50_000;
    let (peak, reclaimed, _) = run_with_staller::<Debra<u64>>(retires);
    // The stalled thread pins the epoch: (almost) everything stays in limbo.
    assert!(reclaimed < retires / 10, "DEBRA should reclaim (almost) nothing, got {reclaimed}");
    assert!(peak > retires / 2, "garbage should grow with the workload, peak was {peak}");
}

#[test]
fn debra_plus_neutralizes_and_bounds_garbage() {
    let retires = 50_000;
    let (peak, reclaimed, neutralized) = run_with_staller::<DebraPlus<u64>>(retires);
    assert!(neutralized > 0, "the stalled thread must be neutralized at least once");
    assert!(reclaimed > retires / 2, "most records should be reclaimed, got {reclaimed}");
    // The paper's bound is O(c + nm) per thread; with default configuration that is a few
    // thousand records — far below the 50k that an unbounded scheme would accumulate.
    assert!(peak < retires / 4, "garbage should stay bounded under DEBRA+, peak was {peak}");
}

#[test]
fn debra_plus_overhead_of_fault_tolerance_is_reasonable() {
    // Not a performance assertion (CI machines vary), just a sanity check that both finish
    // the same amount of work and produce consistent accounting.
    let retires = 20_000;
    let (_, reclaimed_plus, _) = run_with_staller::<DebraPlus<u64>>(retires);
    let stats_ok = reclaimed_plus <= retires;
    assert!(stats_ok);
}

//! Version-clock contract of the VBR scheme, tested end to end.
//!
//! Three layers of the tentpole's safety argument are pinned down here:
//!
//! 1. **Clock monotonicity** (property-based): the global version clock never goes
//!    backwards under concurrent retire-driven advancement, and per-slot birth
//!    versions are monotone and never ahead of the clock.
//! 2. **Stale-reader neutralization** (deterministic, mutation-style like
//!    `tests/sanitizer.rs`): a reader pinned at version `v` always gets a typed
//!    [`Restart`] from every checkpoint once the clock reaches `v + 2`, and the
//!    run-loop re-pin clears the staleness and completes the operation.
//! 3. **The allocator gate** (satellite: `AllocatorRequirement`): registering VBR
//!    over a non-type-stable allocator must panic with an actionable message.

use std::ptr::NonNull;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use proptest::prelude::*;

use debra_repro::debra::{
    Allocator as _, Atomic, Domain, Pool as _, ReclaimSink, Reclaimer, ReclaimerThread,
    RecordManager, Shared,
};
use debra_repro::smr_alloc::{SystemAllocator, ThreadPool};
use debra_repro::smr_pagepool::{PageAllocator, PagePool};
use debra_repro::smr_vbr::{Vbr, VbrConfig};

/// A sink that frees what it accepts (test records come from `Box::leak`).
#[derive(Default)]
struct FreeingSink;
impl ReclaimSink<u64> for FreeingSink {
    fn accept(&mut self, record: NonNull<u64>) {
        drop(unsafe { Box::from_raw(record.as_ptr()) });
    }
}

fn leak(v: u64) -> NonNull<u64> {
    NonNull::from(Box::leak(Box::new(v)))
}

fn free_orphans(v: &Vbr<u64>) {
    for r in v.drain_orphans() {
        drop(unsafe { Box::from_raw(r.as_ptr()) });
    }
}

proptest! {
    /// The clock observed by any thread is monotone while other threads drive it
    /// through the retire path, and every thread's pin snapshot is never ahead of
    /// the clock it re-reads.
    #[test]
    fn clock_is_monotone_under_concurrent_advancement(
        threads in 2usize..5,
        ops in 50u64..300,
    ) {
        let v: Arc<Vbr<u64>> = Arc::new(Vbr::with_config(threads, VbrConfig::tiny()));
        let start = v.current_version();
        let joins: Vec<_> = (0..threads)
            .map(|tid| {
                let v = Arc::clone(&v);
                std::thread::spawn(move || {
                    let mut t = Vbr::register(&v, tid).unwrap();
                    let mut sink = FreeingSink;
                    let mut last = v.current_version();
                    for i in 0..ops {
                        let _ = t.leave_qstate(&mut sink);
                        assert!(t.op_version() <= v.current_version());
                        unsafe { t.retire(leak(i), &mut sink) };
                        let now = v.current_version();
                        assert!(now >= last, "clock went backwards: {last} -> {now}");
                        last = now;
                        t.enter_qstate();
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        prop_assert!(v.current_version() > start, "retire-driven ticks must advance the clock");
        free_orphans(&v);
    }

    /// Per-slot birth versions are monotone across rebirths, never decrease under
    /// interleaved clock advancement, and never get ahead of the clock — the
    /// ordering the one-tick validation path relies on.
    #[test]
    fn birth_versions_are_monotone_and_bounded_by_the_clock(
        script in proptest::collection::vec(0u8..3, 1..60),
    ) {
        let v: Arc<Vbr<u64>> = Arc::new(Vbr::with_config(1, VbrConfig::tiny()));
        let mut t = Vbr::register(&v, 0).unwrap();
        let mut sink = FreeingSink;
        let _ = t.leave_qstate(&mut sink);
        let record = leak(0);
        let mut last_birth = 0;
        for step in script {
            match step {
                0 => { v.advance_version(); }
                _ => { t.record_allocated(record); }
            }
            let birth = v.birth_version(record);
            prop_assert!(birth >= last_birth, "birth went backwards: {last_birth} -> {birth}");
            prop_assert!(birth <= v.current_version(), "a record cannot be born in the future");
            last_birth = birth;
        }
        // Retiring stamps the limbo batch with the current clock, so the retire
        // version can never precede the last birth.
        unsafe { t.retire(record, &mut sink) };
        prop_assert!(last_birth <= v.current_version());
        drop(t);
        free_orphans(&v);
    }
}

type VbrManager = RecordManager<u64, Vbr<u64>, PagePool<u64>, PageAllocator<u64>>;
type VbrDomain = Domain<u64, Vbr<u64>, PagePool<u64>, PageAllocator<u64>>;

fn tiny_vbr_domain(threads: usize) -> (Arc<VbrManager>, VbrDomain) {
    let manager = Arc::new(RecordManager::from_parts(
        Arc::new(Vbr::with_config(threads, VbrConfig::tiny())),
        Arc::new(PagePool::new(threads)),
        Arc::new(PageAllocator::new(threads)),
    ));
    let domain = Domain::with_manager(Arc::clone(&manager));
    (manager, domain)
}

/// The deterministic staleness contract at the guard layer: a reader pinned at
/// version `v` passes every checkpoint while `clock < v + 2`, and *always* gets a
/// typed `Restart` from both `check` and `protect` once the clock reaches `v + 2`.
#[test]
fn stale_reader_always_gets_a_typed_restart() {
    let (manager, domain) = tiny_vbr_domain(2);
    let vbr = manager.reclaimer();

    let guard = domain.pin();
    let link = Atomic::from_owned(guard.alloc(41u64));
    assert!(guard.check().is_ok());
    let mut shield = guard.shield();
    assert!(shield.protect(&link).is_ok(), "fresh snapshot: fast path");

    vbr.advance_version();
    // One tick: the validate path re-reads the link and re-checks the window.
    assert!(guard.check().is_ok());
    assert!(shield.protect(&link).is_ok(), "one tick: validated read passes");

    vbr.advance_version();
    // Two ticks: stale.  Every checkpoint now refuses, deterministically.
    for _ in 0..3 {
        assert!(guard.check().is_err(), "a stale reader must fail check()");
        assert!(shield.protect(&link).is_err(), "a stale reader must fail protect()");
    }
    drop(shield);
    drop(guard);

    // Re-pinning takes a fresh snapshot; the same reader passes again, and the
    // record (born before the new snapshot) is readable and retirable.
    let guard = domain.pin();
    assert!(guard.check().is_ok());
    let mut shield = guard.shield();
    let node = shield.protect(&link).expect("fresh pin clears staleness");
    assert_eq!(node.as_ref().copied(), Some(41));
    link.compare_exchange(node, Shared::null(), Ordering::AcqRel, Ordering::Acquire, &guard)
        .expect("unlink is uncontended");
    guard.retire(node);
    assert!(vbr.stats().epoch_stalls >= 6, "each refused checkpoint counts a stall");
}

/// The run-loop half of the contract: a `Restart` surfaced mid-operation re-pins
/// and re-runs the body, so an operation interrupted by staleness still completes.
#[test]
fn stale_operation_is_rerun_to_completion() {
    let (manager, domain) = tiny_vbr_domain(2);
    let vbr = Arc::clone(manager.reclaimer());

    let mut attempts = 0;
    let out = domain.run(|guard| {
        attempts += 1;
        if attempts == 1 {
            // Make this pin stale mid-operation, then hit a checkpoint.
            vbr.advance_version();
            vbr.advance_version();
            guard.check()?;
            unreachable!("a stale reader cannot pass the checkpoint");
        }
        guard.check()?;
        Ok(attempts)
    });
    assert_eq!(out, 2, "the operation must be re-run exactly once after the restart");
}

/// Satellite: the `AllocatorRequirement` gate.  VBR's optimistic reads are only
/// machine-safe over type-stable memory, so composing it with a non-type-stable
/// allocator must fail fast at registration with an actionable message.
#[test]
#[should_panic(expected = "requires ALLOCATOR=pagepool")]
fn vbr_rejects_non_type_stable_allocators() {
    let _manager: RecordManager<u64, Vbr<u64>, ThreadPool<u64>, SystemAllocator<u64>> =
        RecordManager::new(2);
}

//! Property-based tests (proptest) on the core substrates and data structure invariants.

use std::collections::BTreeMap;
use std::ptr::NonNull;
use std::sync::Arc;

use proptest::prelude::*;

use debra_repro::blockbag::BlockBag;
use debra_repro::debra::{Debra, RecordManager};
use debra_repro::lockfree_ds::{BstNode, ConcurrentMap, ExternalBst};
use debra_repro::neutralize::AnnounceWord;
use debra_repro::smr_alloc::{SystemAllocator, ThreadPool};
use debra_repro::smr_ibr::Ibr;

fn fake_ptr(v: usize) -> NonNull<u64> {
    NonNull::new(((v + 1) * 8) as *mut u64).unwrap()
}

proptest! {
    /// A block bag behaves like a multiset: every pushed pointer comes back exactly once,
    /// regardless of the block capacity, and the "all non-head blocks are full" invariant
    /// keeps `take_full_blocks` lossless.
    #[test]
    fn blockbag_is_a_lossless_multiset(
        values in proptest::collection::vec(0usize..10_000, 0..600),
        capacity in 1usize..64,
        take_midway in any::<bool>(),
    ) {
        let mut bag: BlockBag<u64> = BlockBag::with_block_capacity(capacity);
        let mut moved: Vec<NonNull<u64>> = Vec::new();
        for (i, v) in values.iter().enumerate() {
            bag.push(fake_ptr(*v + i * 16_384));
            if take_midway && i == values.len() / 2 {
                for block in bag.take_full_blocks() {
                    moved.extend(block.iter());
                }
            }
        }
        prop_assert_eq!(bag.len() + moved.len(), values.len());
        let mut all: Vec<usize> = bag.iter().chain(moved.iter().copied()).map(|p| p.as_ptr() as usize).collect();
        let mut expected: Vec<usize> = values.iter().enumerate().map(|(i, v)| fake_ptr(*v + i * 16_384).as_ptr() as usize).collect();
        all.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(all, expected);
    }

    /// The announcement word packing round-trips for every epoch and quiescent bit.
    #[test]
    fn announce_word_roundtrip(epoch_half in 0u64..(1 << 40), quiescent in any::<bool>()) {
        let epoch = epoch_half << 1; // epochs always have a zero low bit
        let word = AnnounceWord::pack(epoch, quiescent);
        prop_assert_eq!(AnnounceWord::epoch(word), epoch);
        prop_assert_eq!(AnnounceWord::is_quiescent(word), quiescent);
        prop_assert!(AnnounceWord::epoch_matches(epoch, word));
    }

    /// The external BST behaves exactly like a `BTreeMap` under arbitrary sequential
    /// operation sequences (with reclamation through the Record Manager happening
    /// underneath).
    #[test]
    fn bst_matches_btreemap(ops in proptest::collection::vec((0u8..3, 0u64..64), 1..400)) {
        type Node = BstNode<u64, u64>;
        type Map = ExternalBst<u64, u64, Debra<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
        let manager = Arc::new(RecordManager::new(1));
        let map: Map = ExternalBst::new(manager);
        let mut handle = map.register(0).unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (op, key) in ops {
            match op {
                0 => prop_assert_eq!(map.insert(&mut handle, key, key * 7), model.insert(key, key * 7).is_none()),
                1 => prop_assert_eq!(map.remove(&mut handle, &key), model.remove(&key).is_some()),
                _ => prop_assert_eq!(map.get(&mut handle, &key), model.get(&key).copied()),
            }
        }
        prop_assert_eq!(map.len(&mut handle), model.len());
    }

    /// Swapping the reclaimer type parameter to IBR preserves exact map semantics — the
    /// Record Manager promise, now covering the interval-based scheme too.
    #[test]
    fn bst_matches_btreemap_under_ibr(ops in proptest::collection::vec((0u8..3, 0u64..64), 1..400)) {
        type Node = BstNode<u64, u64>;
        type Map = ExternalBst<u64, u64, Ibr<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
        let manager = Arc::new(RecordManager::new(1));
        let map: Map = ExternalBst::new(manager);
        let mut handle = map.register(0).unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (op, key) in ops {
            match op {
                0 => prop_assert_eq!(map.insert(&mut handle, key, key * 7), model.insert(key, key * 7).is_none()),
                1 => prop_assert_eq!(map.remove(&mut handle, &key), model.remove(&key).is_some()),
                _ => prop_assert_eq!(map.get(&mut handle, &key), model.get(&key).copied()),
            }
        }
        prop_assert_eq!(map.len(&mut handle), model.len());
    }
}

//! Property-based tests (proptest) on the core substrates and data structure invariants.

use std::collections::BTreeMap;
use std::ptr::NonNull;
use std::sync::Arc;

use proptest::prelude::*;

use debra_repro::blockbag::BlockBag;
use debra_repro::debra::{Debra, DebraPlus, Reclaimer, RecordManager};
use debra_repro::lockfree_ds::{BstNode, ConcurrentBag, ConcurrentMap, ExternalBst};
use debra_repro::neutralize::AnnounceWord;
use debra_repro::smr_alloc::{SystemAllocator, ThreadPool};
use debra_repro::smr_baselines::{ClassicEbr, HazardPointers, NoReclaim, ThreadScanLite};
use debra_repro::smr_hashmap::{HashMapNode, LockFreeHashMap};
use debra_repro::smr_ibr::Ibr;
use debra_repro::smr_queue::{MsQueue, QueueNode, StackNode, TreiberStack};

fn fake_ptr(v: usize) -> NonNull<u64> {
    NonNull::new(((v + 1) * 8) as *mut u64).unwrap()
}

proptest! {
    /// A block bag behaves like a multiset: every pushed pointer comes back exactly once,
    /// regardless of the block capacity, and the "all non-head blocks are full" invariant
    /// keeps `take_full_blocks` lossless.
    #[test]
    fn blockbag_is_a_lossless_multiset(
        values in proptest::collection::vec(0usize..10_000, 0..600),
        capacity in 1usize..64,
        take_midway in any::<bool>(),
    ) {
        let mut bag: BlockBag<u64> = BlockBag::with_block_capacity(capacity);
        let mut moved: Vec<NonNull<u64>> = Vec::new();
        for (i, v) in values.iter().enumerate() {
            bag.push(fake_ptr(*v + i * 16_384));
            if take_midway && i == values.len() / 2 {
                for block in bag.take_full_blocks() {
                    moved.extend(block.iter());
                }
            }
        }
        prop_assert_eq!(bag.len() + moved.len(), values.len());
        let mut all: Vec<usize> = bag.iter().chain(moved.iter().copied()).map(|p| p.as_ptr() as usize).collect();
        let mut expected: Vec<usize> = values.iter().enumerate().map(|(i, v)| fake_ptr(*v + i * 16_384).as_ptr() as usize).collect();
        all.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(all, expected);
    }

    /// The announcement word packing round-trips for every epoch and quiescent bit.
    #[test]
    fn announce_word_roundtrip(epoch_half in 0u64..(1 << 40), quiescent in any::<bool>()) {
        let epoch = epoch_half << 1; // epochs always have a zero low bit
        let word = AnnounceWord::pack(epoch, quiescent);
        prop_assert_eq!(AnnounceWord::epoch(word), epoch);
        prop_assert_eq!(AnnounceWord::is_quiescent(word), quiescent);
        prop_assert!(AnnounceWord::epoch_matches(epoch, word));
    }

    /// The external BST behaves exactly like a `BTreeMap` under arbitrary sequential
    /// operation sequences (with reclamation through the Record Manager happening
    /// underneath).
    #[test]
    fn bst_matches_btreemap(ops in proptest::collection::vec((0u8..3, 0u64..64), 1..400)) {
        type Node = BstNode<u64, u64>;
        type Map = ExternalBst<u64, u64, Debra<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
        let manager = Arc::new(RecordManager::new(1));
        let map: Map = ExternalBst::new(manager);
        let mut handle = map.register().unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (op, key) in ops {
            match op {
                0 => prop_assert_eq!(map.insert(&mut handle, key, key * 7), model.insert(key, key * 7).is_none()),
                1 => prop_assert_eq!(map.remove(&mut handle, &key), model.remove(&key).is_some()),
                _ => prop_assert_eq!(map.get(&mut handle, &key), model.get(&key).copied()),
            }
        }
        prop_assert_eq!(map.len(&mut handle), model.len());
    }

    /// The lock-free hash map behaves exactly like a `HashMap` under arbitrary sequential
    /// operation sequences, with a bucket count small enough that chains genuinely collide.
    #[test]
    fn hashmap_matches_std_hashmap(ops in proptest::collection::vec((0u8..3, 0u64..64), 1..400)) {
        type Node = HashMapNode<u64, u64>;
        type Map = LockFreeHashMap<u64, u64, Debra<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
        let manager = Arc::new(RecordManager::new(1));
        let map: Map = LockFreeHashMap::with_buckets(manager, 8);
        let mut handle = map.register().unwrap();
        let mut model: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (op, key) in ops {
            match op {
                0 => prop_assert_eq!(map.insert(&mut handle, key, key * 7), model.insert(key, key * 7).is_none()),
                1 => prop_assert_eq!(map.remove(&mut handle, &key), model.remove(&key).is_some()),
                _ => prop_assert_eq!(map.get(&mut handle, &key), model.get(&key).copied()),
            }
        }
        prop_assert_eq!(map.len(&mut handle), model.len());
    }

    /// The MS queue behaves exactly like a `VecDeque` under arbitrary sequential
    /// push/pop sequences (the sequential-consistency oracle of the bag interface, with
    /// reclamation running underneath — every pop retires the old sentinel).
    #[test]
    fn queue_matches_vecdeque(ops in proptest::collection::vec((any::<bool>(), 0u64..1024), 1..400)) {
        use std::collections::VecDeque;
        type Node = QueueNode<u64>;
        type Queue = MsQueue<u64, Debra<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
        let manager = Arc::new(RecordManager::new(1));
        let queue: Queue = MsQueue::new(manager);
        let mut handle = queue.register().unwrap();
        let mut model: VecDeque<u64> = VecDeque::new();
        for (is_push, v) in ops {
            if is_push {
                queue.push(&mut handle, v);
                model.push_back(v);
            } else {
                prop_assert_eq!(queue.pop(&mut handle), model.pop_front());
            }
        }
        prop_assert_eq!(queue.len(&mut handle), model.len());
        // Drain in FIFO order.
        while let Some(expected) = model.pop_front() {
            prop_assert_eq!(queue.pop(&mut handle), Some(expected));
        }
        prop_assert_eq!(queue.pop(&mut handle), None);
    }

    /// The Treiber stack behaves exactly like a `Vec` under arbitrary sequential
    /// push/pop sequences.
    #[test]
    fn stack_matches_vec(ops in proptest::collection::vec((any::<bool>(), 0u64..1024), 1..400)) {
        type Node = StackNode<u64>;
        type Stack = TreiberStack<u64, Debra<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
        let manager = Arc::new(RecordManager::new(1));
        let stack: Stack = TreiberStack::new(manager);
        let mut handle = stack.register().unwrap();
        let mut model: Vec<u64> = Vec::new();
        for (is_push, v) in ops {
            if is_push {
                stack.push(&mut handle, v);
                model.push(v);
            } else {
                prop_assert_eq!(stack.pop(&mut handle), model.pop());
            }
        }
        prop_assert_eq!(stack.len(&mut handle), model.len());
        while let Some(expected) = model.pop() {
            prop_assert_eq!(stack.pop(&mut handle), Some(expected));
        }
        prop_assert_eq!(stack.pop(&mut handle), None);
    }

    /// Swapping the queue's reclaimer to hazard pointers preserves exact FIFO semantics —
    /// the dequeue's anchored two-shield window (`protect_anchored`) under the scheme
    /// that actually validates it.
    #[test]
    fn queue_matches_vecdeque_under_hp(ops in proptest::collection::vec((any::<bool>(), 0u64..1024), 1..400)) {
        use std::collections::VecDeque;
        type Node = QueueNode<u64>;
        type Queue = MsQueue<u64, HazardPointers<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
        let manager = Arc::new(RecordManager::new(1));
        let queue: Queue = MsQueue::new(manager);
        let mut handle = queue.register().unwrap();
        let mut model: VecDeque<u64> = VecDeque::new();
        for (is_push, v) in ops {
            if is_push {
                queue.push(&mut handle, v);
                model.push_back(v);
            } else {
                prop_assert_eq!(queue.pop(&mut handle), model.pop_front());
            }
        }
        while let Some(expected) = model.pop_front() {
            prop_assert_eq!(queue.pop(&mut handle), Some(expected));
        }
        prop_assert_eq!(queue.pop(&mut handle), None);
    }

    /// Swapping the reclaimer type parameter to IBR preserves exact map semantics — the
    /// Record Manager promise, now covering the interval-based scheme too.
    #[test]
    fn bst_matches_btreemap_under_ibr(ops in proptest::collection::vec((0u8..3, 0u64..64), 1..400)) {
        type Node = BstNode<u64, u64>;
        type Map = ExternalBst<u64, u64, Ibr<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
        let manager = Arc::new(RecordManager::new(1));
        let map: Map = ExternalBst::new(manager);
        let mut handle = map.register().unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (op, key) in ops {
            match op {
                0 => prop_assert_eq!(map.insert(&mut handle, key, key * 7), model.insert(key, key * 7).is_none()),
                1 => prop_assert_eq!(map.remove(&mut handle, &key), model.remove(&key).is_some()),
                _ => prop_assert_eq!(map.get(&mut handle, &key), model.get(&key).copied()),
            }
        }
        prop_assert_eq!(map.len(&mut handle), model.len());
    }
}

/// Concurrent linearizability-style oracle for the hash map: worker threads run random
/// insert/remove/contains/get against the lock-free map *and* a striped, locked `HashMap`
/// reference.  Each (map operation, model operation) pair executes atomically under the
/// key's stripe lock, so per key the history is sequential and every return value has one
/// correct answer — while operations on *different* keys (including keys sharing a bucket
/// chain!) run genuinely concurrently, exercising traversal over nodes that other threads
/// are concurrently unlinking and retiring.  A per-key-independent map makes this a sound
/// oracle: an operation's result depends only on its own key's state.
fn hashmap_striped_oracle<R>()
where
    R: Reclaimer<HashMapNode<u64, u64>>,
{
    use std::collections::HashMap;
    use std::sync::Mutex;

    const THREADS: usize = 3;
    const STRIPES: usize = 16;
    const KEYS: u64 = 64;
    const OPS: u64 = 3_000;
    type Node = HashMapNode<u64, u64>;
    type Map<R> = LockFreeHashMap<u64, u64, R, ThreadPool<Node>, SystemAllocator<Node>>;

    let manager: Arc<RecordManager<Node, R, ThreadPool<Node>, SystemAllocator<Node>>> =
        Arc::new(RecordManager::new(THREADS + 1));
    // 8 buckets for 64 keys: every bucket chain is shared by several stripes, so oracle
    // serialization per key does not serialize bucket traffic.
    let map: Arc<Map<R>> = Arc::new(LockFreeHashMap::with_buckets(Arc::clone(&manager), 8));
    let oracle: Arc<Vec<Mutex<HashMap<u64, u64>>>> =
        Arc::new((0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect());

    let mut joins = Vec::new();
    for tid in 0..THREADS {
        let map = Arc::clone(&map);
        let oracle = Arc::clone(&oracle);
        joins.push(std::thread::spawn(move || {
            let mut handle = map.register().expect("register worker");
            let mut x: u64 = 0x9E37_79B9_7F4A_7C15 ^ ((tid as u64) << 21);
            for i in 0..OPS {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let key = (x >> 33) % KEYS;
                let value = ((tid as u64) << 32) | i;
                let mut model =
                    oracle[(key % STRIPES as u64) as usize].lock().expect("stripe lock poisoned");
                match (x >> 61) % 4 {
                    0 | 1 => {
                        // `ConcurrentMap::insert` has set semantics: it does NOT replace
                        // the value of an existing key, so neither may the model.
                        let was_absent = !model.contains_key(&key);
                        if was_absent {
                            model.insert(key, value);
                        }
                        assert_eq!(
                            map.insert(&mut handle, key, value),
                            was_absent,
                            "insert({key}) disagreed with the oracle"
                        );
                    }
                    2 => assert_eq!(
                        map.remove(&mut handle, &key),
                        model.remove(&key).is_some(),
                        "remove({key}) disagreed with the oracle"
                    ),
                    _ => assert_eq!(
                        map.get(&mut handle, &key),
                        model.get(&key).copied(),
                        "get({key}) disagreed with the oracle"
                    ),
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    // Final state must match the oracle exactly: same size, same key/value pairs.
    let mut handle = map.register().expect("register checker");
    let mut expected = 0usize;
    for stripe in oracle.iter() {
        let model = stripe.lock().expect("stripe lock poisoned");
        expected += model.len();
        for (k, v) in model.iter() {
            assert_eq!(map.get(&mut handle, k), Some(*v), "final value of key {k}");
        }
    }
    assert_eq!(map.len(&mut handle), expected, "final size must match the oracle");
    let stats = manager.reclaimer().stats();
    assert!(stats.reclaimed <= stats.retired);
}

macro_rules! hashmap_oracle_test {
    ($name:ident, $recl:ty) => {
        #[test]
        fn $name() {
            hashmap_striped_oracle::<$recl>();
        }
    };
}

/// Concurrent sequential-consistency oracle for the queue: every (queue operation,
/// `Mutex<VecDeque>` operation) pair executes atomically under one lock, so the global
/// history is sequential and every pop has exactly one correct answer.  Unlike the
/// striped map oracle this serializes the queue itself — a queue has a single
/// linearization point, there is no per-key independence to exploit — but the
/// *reclamation* machinery still runs fully concurrently: handles on three threads,
/// cross-thread retirement of sentinels popped by other threads' pushes, epoch/HP/IBR
/// scans racing the lock-free window.  What it proves is hand-off correctness per
/// scheme: the value delivered is always the model's front, under every reclaimer.
fn queue_locked_oracle<R>()
where
    R: Reclaimer<QueueNode<u64>>,
{
    use std::collections::VecDeque;
    use std::sync::Mutex;

    const THREADS: usize = 3;
    const OPS: u64 = 3_000;
    type Node = QueueNode<u64>;
    type Queue<R> = MsQueue<u64, R, ThreadPool<Node>, SystemAllocator<Node>>;

    let manager: Arc<RecordManager<Node, R, ThreadPool<Node>, SystemAllocator<Node>>> =
        Arc::new(RecordManager::new(THREADS + 1));
    let queue: Arc<Queue<R>> = Arc::new(MsQueue::new(Arc::clone(&manager)));
    let oracle: Arc<Mutex<VecDeque<u64>>> = Arc::new(Mutex::new(VecDeque::new()));

    let mut joins = Vec::new();
    for tid in 0..THREADS {
        let queue = Arc::clone(&queue);
        let oracle = Arc::clone(&oracle);
        joins.push(std::thread::spawn(move || {
            let mut handle = queue.register().expect("register worker");
            let mut x: u64 = 0x9E37_79B9_7F4A_7C15 ^ ((tid as u64) << 21);
            for i in 0..OPS {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let mut model = oracle.lock().expect("oracle lock poisoned");
                if (x >> 61).is_multiple_of(2) {
                    let v = ((tid as u64) << 32) | i;
                    queue.push(&mut handle, v);
                    model.push_back(v);
                } else {
                    assert_eq!(
                        queue.pop(&mut handle),
                        model.pop_front(),
                        "pop disagreed with the sequential model"
                    );
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let mut handle = queue.register().expect("register checker");
    let mut model = oracle.lock().expect("oracle lock poisoned");
    while let Some(expected) = model.pop_front() {
        assert_eq!(queue.pop(&mut handle), Some(expected), "drain must stay FIFO");
    }
    assert_eq!(queue.pop(&mut handle), None);
    let stats = manager.reclaimer().stats();
    assert!(stats.reclaimed <= stats.retired);
}

macro_rules! queue_oracle_test {
    ($name:ident, $recl:ty) => {
        #[test]
        fn $name() {
            queue_locked_oracle::<$recl>();
        }
    };
}

type QoNode = QueueNode<u64>;
queue_oracle_test!(queue_oracle_none, NoReclaim<QoNode>);
queue_oracle_test!(queue_oracle_ebr, ClassicEbr<QoNode>);
queue_oracle_test!(queue_oracle_hazard_pointers, HazardPointers<QoNode>);
queue_oracle_test!(queue_oracle_threadscan, ThreadScanLite<QoNode>);
queue_oracle_test!(queue_oracle_debra, Debra<QoNode>);
queue_oracle_test!(queue_oracle_debra_plus, DebraPlus<QoNode>);
queue_oracle_test!(queue_oracle_ibr, Ibr<QoNode>);

type HmNode = HashMapNode<u64, u64>;
hashmap_oracle_test!(hashmap_oracle_none, NoReclaim<HmNode>);
hashmap_oracle_test!(hashmap_oracle_ebr, ClassicEbr<HmNode>);
hashmap_oracle_test!(hashmap_oracle_hazard_pointers, HazardPointers<HmNode>);
hashmap_oracle_test!(hashmap_oracle_threadscan, ThreadScanLite<HmNode>);
hashmap_oracle_test!(hashmap_oracle_debra, Debra<HmNode>);
hashmap_oracle_test!(hashmap_oracle_debra_plus, DebraPlus<HmNode>);
hashmap_oracle_test!(hashmap_oracle_ibr, Ibr<HmNode>);

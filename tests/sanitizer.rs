//! Mutation-style validation of the `smr-check` pointer-race sanitizer.
//!
//! Each `*_is_flagged` test re-injects one of the workspace's three historical seed
//! bugs — fixed by hand in PRs 1–4, now expected to be caught mechanically — and
//! asserts that the shadow-state machine reports exactly the right violation class:
//!
//! 1. **Double retire** (the queue/skiplist double-free): the same record handed to
//!    `retire` twice, single-threaded and racing from two threads.
//! 2. **Hazard-pointer full-word UAF** (the mark-stripping bug): a reader announces the
//!    *tagged* word instead of the stripped pointer, so the scan does not see the record
//!    as protected, frees it under the reader, and the subsequent deref is a
//!    use-after-free.
//! 3. **Teardown leak**: a published record never retired is reported when its Record
//!    Manager is torn down.
//!
//! The clean-run test is the other half of the contract: a correct workload under every
//! scheme must produce **zero** reports (no false positives).
//!
//! The sanitizer's counters and shadow table are process-global, so every test
//! serializes on [`LOCK`] and asserts on counter *deltas*.

#![cfg(feature = "smr_sanitize")]

use std::ptr::NonNull;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use check::ViolationKind;
use debra_repro::debra::{
    Allocator as _, Atomic, Debra, DebraPlus, Domain, Pool as _, RecordManager, Shared,
};
use debra_repro::lockfree_ds::{ConcurrentMap, HarrisMichaelList, ListNode};
use debra_repro::smr_alloc::{SystemAllocator, ThreadPool};
use debra_repro::smr_baselines::{ClassicEbr, HazardPointers, HpConfig, NoReclaim, ThreadScanLite};
use debra_repro::smr_check as check;
use debra_repro::smr_ibr::Ibr;
use debra_repro::smr_pagepool::{PageAllocator, PagePool};
use debra_repro::smr_vbr::Vbr;

/// Serializes the tests: the shadow table, violation counters and panic-mode switch are
/// process-global.  Poison-tolerant so one failing test does not cascade.
static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

type DebraDomain = Domain<u64, Debra<u64>, ThreadPool<u64>, SystemAllocator<u64>>;
type HpManager = RecordManager<u64, HazardPointers<u64>, ThreadPool<u64>, SystemAllocator<u64>>;

/// Seed bug 1a, single-threaded shape: an unlink path that retires its victim twice.
/// Record mode must report `DoubleRetire` once and *suppress* the second hand-off so the
/// flagged run stays memory-safe (no actual double free).
#[test]
fn double_retire_is_flagged_and_suppressed() {
    let _serial = locked();
    let before = check::count(ViolationKind::DoubleRetire);

    let domain: Domain<u64, ClassicEbr<u64>, ThreadPool<u64>, SystemAllocator<u64>> =
        Domain::new(2);
    {
        let guard = domain.pin();
        let link = Atomic::from_owned(guard.alloc(0xDEAD_u64));
        let node = link.load(Ordering::Acquire, &guard);
        link.compare_exchange(node, Shared::null(), Ordering::AcqRel, Ordering::Acquire, &guard)
            .expect("unlink is uncontended");
        guard.retire(node); // the legitimate retire of the unique unlinker
        guard.retire(node); // the re-injected bug
    }
    drop(domain);

    assert_eq!(
        check::count(ViolationKind::DoubleRetire) - before,
        1,
        "the second retire must be reported exactly once"
    );
    let _ = check::take_violations();
}

/// Seed bug 1b, the racing shape (the skip-list double-free): two threads both believe
/// they won the unlink and both retire the same node.  Exactly one extra retire exists,
/// so exactly one `DoubleRetire` must be reported — from whichever thread lost.
#[test]
fn racing_double_retire_is_flagged() {
    let _serial = locked();
    let before = check::count(ViolationKind::DoubleRetire);

    let domain: Arc<DebraDomain> = Arc::new(Domain::new(4));
    // `link` is the contended location both threads try to unlink; `stale` is the
    // snapshot each racing thread already holds (it is never overwritten, exactly like
    // the local variable in the original skip-list unlink path).
    let (link, stale) = {
        let guard = domain.pin();
        let link = Atomic::from_owned(guard.alloc(0xBEEF_u64));
        let stale = Atomic::from_shared(link.load(Ordering::Acquire, &guard));
        (Arc::new(link), Arc::new(stale))
    };

    let mut joins = Vec::new();
    for _ in 0..2 {
        let domain = Arc::clone(&domain);
        let link = Arc::clone(&link);
        let stale = Arc::clone(&stale);
        joins.push(std::thread::spawn(move || {
            let guard = domain.pin();
            let node = stale.load(Ordering::Acquire, &guard);
            // The re-injected bug: both threads retire whether or not their unlink CAS
            // won (the correct code retires only on `Ok`).
            let _ = link.compare_exchange(
                node,
                Shared::null(),
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            );
            guard.retire(node);
        }));
    }
    for j in joins {
        j.join().expect("retiring thread must not crash: record mode suppresses the bug");
    }
    drop(link);
    drop(domain);

    assert_eq!(
        check::count(ViolationKind::DoubleRetire) - before,
        1,
        "two retires of one record must produce exactly one report"
    );
    let _ = check::take_violations();
}

/// Seed bug 2: the hazard-pointer full-word / mark-stripping use-after-free.  The reader
/// announces the *tagged* word (`addr | 1`); the scan compares full words, so the record
/// is invisible to it, gets freed under the reader, and the deref that follows is a
/// use-after-free.  Record mode cannot make a real deref of freed memory safe, so this
/// test flips the sanitizer into panic mode and catches the abort *before* the deref.
#[test]
fn hazard_pointer_tagged_announcement_uaf_is_flagged() {
    let _serial = locked();
    let before = check::count(ViolationKind::UseAfterFree);

    // Small slot/slack numbers make the scan threshold deterministic:
    // nk + max(nk, slack) = 2*2 + max(2*2, 0) = 8 retired records trigger a scan.
    let config = HpConfig { slots_per_thread: 2, scan_slack: 0, block_capacity: 4 };
    let manager: Arc<HpManager> = Arc::new(RecordManager::from_parts(
        Arc::new(HazardPointers::with_config(2, config)),
        Arc::new(ThreadPool::new(2)),
        Arc::new(SystemAllocator::new(2)),
    ));
    let domain = Domain::with_manager(Arc::clone(&manager));

    // The victim is published first so the domain's lease takes tid 0 ...
    let link = {
        let guard = domain.pin();
        Atomic::from_owned(guard.alloc(41_u64))
    };
    // ... and the raw reader handle takes tid 1 (the raw layer is the only place the
    // buggy announcement can be written: the safe layer always strips tags).
    let mut reader = manager.register(1).expect("tid 1 is free");
    let mut op = reader.guard();
    let stale = {
        let node = link.load(Ordering::Acquire, &op);
        Atomic::from_shared(node)
    };
    let victim = link.load_ptr(Ordering::Acquire);
    let tagged = NonNull::new((victim as usize | 1) as *mut u64).expect("victim is non-null");
    // The re-injected bug: announce the tagged word.  The validation closure passes —
    // exactly like the historical full-word validation did.
    assert!(op.protect(0, tagged, || true), "the buggy protect itself succeeds");

    // Unlink + retire the victim, then push enough retired records through tid 0 to
    // cross the scan threshold; the scan does not see `victim | 1` as covering `victim`
    // and frees it under the reader.
    {
        let guard = domain.pin();
        let node = link.load(Ordering::Acquire, &guard);
        link.compare_exchange(node, Shared::null(), Ordering::AcqRel, Ordering::Acquire, &guard)
            .expect("unlink is uncontended");
        guard.retire(node);
        for i in 0..12_u64 {
            let filler = Atomic::from_owned(guard.alloc(i));
            let node = filler.load(Ordering::Acquire, &guard);
            filler
                .compare_exchange(node, Shared::null(), Ordering::AcqRel, Ordering::Acquire, &guard)
                .expect("unlink is uncontended");
            guard.retire(node);
        }
    }

    // The reader now dereferences its stale, "protected" pointer.  Panic mode aborts
    // inside the sanitizer hook, *before* the actual read of freed memory.
    check::set_panic_on_violation(true);
    let deref = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let node = stale.load(Ordering::Acquire, &op);
        node.as_ref().copied()
    }));
    check::set_panic_on_violation(false);

    assert!(deref.is_err(), "the use-after-free deref must be intercepted");
    assert_eq!(
        check::count(ViolationKind::UseAfterFree) - before,
        1,
        "the deref of the freed record must be reported as a use-after-free"
    );
    drop(op);
    drop(reader);
    drop(domain);
    let _ = check::take_violations();
}

/// Seed bug 3: a published record that is never retired.  Tearing down the Record
/// Manager must report it through the leak counter.
#[test]
fn unretired_record_is_reported_as_leak_on_teardown() {
    let _serial = locked();
    let before = check::leaked_records();

    let domain: Domain<u64, ClassicEbr<u64>, ThreadPool<u64>, SystemAllocator<u64>> =
        Domain::new(2);
    let _leaked = {
        let guard = domain.pin();
        Atomic::from_owned(guard.alloc(7_u64))
    };
    drop(domain); // the structure "forgot" the node: published, never retired, never freed

    assert!(
        check::leaked_records() > before,
        "teardown must report the published-but-never-retired record"
    );
    let _ = check::take_violations();
}

const STRESS_THREADS: usize = 4;
const STRESS_OPS: u64 = 2_000;

/// Clean-run half of the mutation contract: a correct workload must be report-free under
/// every scheme.  Runs the Harris-Michael list stress (insert/remove/get mix) with the
/// sanitizer shadowing every record and asserts a zero violation delta.
macro_rules! clean_stress {
    ($($name:ident: $reclaimer:ty,)+) => {$(
        clean_stress!(@one $name, $reclaimer, ThreadPool, SystemAllocator);
    )+};
    (@one $name:ident, $reclaimer:ty, $pool:ident, $alloc:ident) => {
        #[test]
        fn $name() {
            let _serial = locked();
            let before = check::total_violations();

            type Node = ListNode<u64, u64>;
            type Map = HarrisMichaelList<u64, u64, $reclaimer, $pool<Node>, $alloc<Node>>;
            let manager = Arc::new(RecordManager::new(STRESS_THREADS + 1));
            let map: Arc<Map> = Arc::new(HarrisMichaelList::new(Arc::clone(&manager)));
            let mut joins = Vec::new();
            for tid in 0..STRESS_THREADS {
                let map = Arc::clone(&map);
                joins.push(std::thread::spawn(move || {
                    let mut handle = map.register().expect("register worker");
                    let mut x: u64 = 0x5851_F42D_4C95_7F2D ^ ((tid as u64) << 13);
                    for _ in 0..STRESS_OPS {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        let key = (x >> 33) % 64;
                        match (x >> 61) % 4 {
                            0 | 1 => { let _ = map.insert(&mut handle, key, key); }
                            2 => { let _ = map.remove(&mut handle, &key); }
                            _ => { let _ = map.get(&mut handle, &key); }
                        }
                    }
                }));
            }
            for j in joins {
                j.join().expect("stress worker must not crash");
            }
            drop(map);

            assert_eq!(
                check::total_violations() - before,
                0,
                "a correct workload must produce zero sanitizer reports"
            );
        }
    };
}

clean_stress! {
    clean_stress_none: NoReclaim<Node>,
    clean_stress_ebr: ClassicEbr<Node>,
    clean_stress_hazard_pointers: HazardPointers<Node>,
    clean_stress_threadscan: ThreadScanLite<Node>,
    clean_stress_debra: Debra<Node>,
    clean_stress_debra_plus: DebraPlus<Node>,
    clean_stress_ibr: Ibr<Node>,
}

// VBR composes only with the type-stable page pool; the validation-aware shadow model
// (`Revived` + excused stale derefs) must keep a clean VBR run report-free.
clean_stress!(@one clean_stress_vbr, Vbr<Node>, PagePool, PageAllocator);

//! `smr-lint` — the static half of the workspace's correctness tooling (the dynamic half
//! is `crates/check`, the pointer-race sanitizer).
//!
//! A hand-rolled, dependency-free token-level scanner that enforces the workspace's SMR
//! discipline rules:
//!
//! * **forbid-unsafe** — every structure crate's `lib.rs` carries
//!   `#![forbid(unsafe_code)]` (this replaces the old `grep` gate in ci.yml).
//! * **unprotected-deref** — in structure crates, no function both loads a link
//!   (`.load(`) and dereferences (`.as_ref()`) without an interposed protection
//!   (`protect`) or neutralization checkpoint (`.check(`).
//! * **hot-path-blocking** — no `std::sync::Mutex` / `thread::sleep` in hot-path crates
//!   (reclaimers, pools, allocators, structures); cold-path exceptions are documented in
//!   the allowlist.
//! * **must-use-guards** — RAII guard types in `crates/core` are `#[must_use]`, and
//!   protection/checkpoint functions returning a result that must be consulted are too.
//!
//! Documented exceptions live in `tools/smr-lint/allowlist.txt`; see that file for the
//! format.  Usage:
//!
//! ```text
//! cargo run -p smr-lint              # report findings, exit 0
//! cargo run -p smr-lint -- --gate    # exit 1 on any unsuppressed finding (CI merge gate)
//! ```

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose sources must stay free of `unsafe` and follow the protect-before-deref
/// discipline (the structure crates written against the safe API).
const STRUCTURE_CRATES: &[&str] = &["crates/datastructures", "crates/hashmap", "crates/queue"];

/// Crates on the retire→free hot path: no blocking mutexes, no sleeps.
const HOT_PATH_CRATES: &[&str] = &[
    "crates/alloc",
    "crates/baselines",
    "crates/blockbag",
    "crates/core",
    "crates/datastructures",
    "crates/hashmap",
    "crates/ibr",
    "crates/neutralize",
    "crates/pagepool",
    "crates/queue",
    "crates/vbr",
];

/// RAII guard types of the safe layer that must be `#[must_use]`.
const GUARD_TYPES: &[&str] =
    &["Guard", "Shield", "ShieldSet", "Recovery", "OpGuard", "Owned", "DomainHandle"];

#[derive(Debug)]
struct Finding {
    rule: &'static str,
    path: String,
    line: usize,
    line_text: String,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}:{}: {}", self.rule, self.path, self.line, self.message)
    }
}

/// One allowlist entry: `rule path-substring [content-substring]  # comment`.
struct Allow {
    rule: String,
    path_sub: String,
    content_sub: Option<String>,
}

fn parse_allowlist(text: &str) -> Vec<Allow> {
    let mut out = Vec::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(path_sub)) = (parts.next(), parts.next()) else { continue };
        let rest: Vec<&str> = parts.collect();
        out.push(Allow {
            rule: rule.to_string(),
            path_sub: path_sub.to_string(),
            content_sub: if rest.is_empty() { None } else { Some(rest.join(" ")) },
        });
    }
    out
}

fn suppressed(f: &Finding, allows: &[Allow]) -> bool {
    allows.iter().any(|a| {
        a.rule == f.rule
            && f.path.contains(&a.path_sub)
            && a.content_sub.as_ref().is_none_or(|c| f.line_text.contains(c))
    })
}

/// Blanks out comments, string literals and char literals (to spaces, preserving
/// newlines and byte offsets) so token scans cannot match inside them.  Handles nested
/// block comments, raw strings (`r"…"`, `r#"…"#`, `br#"…"#`) and the lifetime-vs-char
/// ambiguity of `'`.
fn clean_source(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = src.as_bytes().to_vec();
    let mut i = 0;
    let blank = |out: &mut Vec<u8>, from: usize, to: usize| {
        for c in out.iter_mut().take(to).skip(from) {
            if *c != b'\n' {
                *c = b' ';
            }
        }
    };
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = src[i..].find('\n').map_or(b.len(), |n| i + n);
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                let mut j = i + 2;
                while j + 1 < b.len() && depth > 0 {
                    if b[j] == b'/' && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i, j);
                i = j;
            }
            b'"' => {
                let mut j = i + 1;
                while j < b.len() {
                    match b[j] {
                        b'\\' => j += 2,
                        b'"' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                blank(&mut out, i + 1, j.saturating_sub(1).max(i + 1));
                i = j;
            }
            b'r' | b'b' if raw_string_end(b, i).is_some() => {
                // Raw (and raw-byte) string literals: r"…", r#"…"#, br"…", …
                let (body_start, body_end, end) = raw_string_end(b, i).expect("guard checked Some");
                blank(&mut out, body_start, body_end);
                i = end;
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`): a lifetime's identifier is not
                // followed by a closing quote.
                let is_lifetime = i + 1 < b.len()
                    && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_')
                    && (i + 2 >= b.len() || b[i + 2] != b'\'');
                if is_lifetime {
                    i += 1;
                } else {
                    let mut j = i + 1;
                    if j < b.len() && b[j] == b'\\' {
                        j += 2;
                    } else {
                        j += 1;
                    }
                    while j < b.len() && b[j] != b'\'' {
                        j += 1;
                    }
                    j = (j + 1).min(b.len());
                    blank(&mut out, i + 1, j.saturating_sub(1).max(i + 1));
                    i = j;
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("blanking preserves UTF-8 (ASCII replacements only)")
}

/// If a raw (or raw-byte) string literal starts at `i`, returns
/// `(body_start, body_end, literal_end)`; body bytes are the ones to blank.
fn raw_string_end(b: &[u8], i: usize) -> Option<(usize, usize, usize)> {
    let mut k = i;
    if b[k] == b'b' {
        k += 1;
        if k >= b.len() || b[k] != b'r' {
            return None;
        }
    }
    if b[k] != b'r' {
        return None;
    }
    k += 1;
    let hashes = b[k..].iter().take_while(|&&c| c == b'#').count();
    let open = k + hashes;
    if open >= b.len() || b[open] != b'"' {
        return None;
    }
    let closer: Vec<u8> = std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
    let body_start = open + 1;
    let end = b[body_start..]
        .windows(closer.len())
        .position(|w| w == closer.as_slice())
        .map_or(b.len(), |p| body_start + p + closer.len());
    Some((body_start, end.saturating_sub(closer.len()).max(body_start), end))
}

/// Byte offset → 1-based line number.
fn line_of(src: &str, off: usize) -> usize {
    src.as_bytes().iter().take(off).filter(|&&c| c == b'\n').count() + 1
}

fn line_text(src: &str, line: usize) -> String {
    src.lines().nth(line.saturating_sub(1)).unwrap_or("").trim().to_string()
}

/// Finds the matching `}` for the `{` at `open` (cleaned source, so braces in strings
/// and comments cannot confuse the count).
fn match_brace(clean: &str, open: usize) -> usize {
    let b = clean.as_bytes();
    let mut depth = 0;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    clean.len()
}

/// Blanks every `#[cfg(test)] mod … { … }` region so lint rules only see shipped code.
fn strip_test_modules(clean: &str) -> String {
    let mut out = clean.to_string();
    let mut search = 0;
    while let Some(pos) = out[search..].find("#[cfg(test)]") {
        let attr = search + pos;
        let after = attr + "#[cfg(test)]".len();
        // Only blank module bodies (items under the attr without `mod` — a test-only
        // fn/impl — are rare and harmless to keep).
        let window_end = (after + 200).min(out.len());
        let Some(modpos) = out[after..window_end].find("mod ") else {
            search = after;
            continue;
        };
        let Some(bracepos) = out[after + modpos..].find('{') else {
            search = after;
            continue;
        };
        let open = after + modpos + bracepos;
        let close = match_brace(&out, open);
        let bytes = unsafe { out.as_bytes_mut() };
        for c in bytes.iter_mut().take(close).skip(open + 1) {
            if *c != b'\n' {
                *c = b' ';
            }
        }
        search = close.min(out.len());
    }
    out
}

/// Extracts `(name, header_offset, body_range)` for every `fn` in the cleaned source.
fn functions(clean: &str) -> Vec<(String, usize, std::ops::Range<usize>)> {
    let mut out = Vec::new();
    let b = clean.as_bytes();
    let mut i = 0;
    while let Some(pos) = clean[i..].find("fn ") {
        let at = i + pos;
        // Must be a keyword: preceded by start, whitespace, or `(` (closure params).
        let ok_prefix = at == 0 || matches!(b[at - 1], b' ' | b'\n' | b'\t' | b'(');
        if !ok_prefix {
            i = at + 3;
            continue;
        }
        let name_start = at + 3;
        let name_end = clean[name_start..]
            .find(|c: char| !(c.is_alphanumeric() || c == '_'))
            .map_or(clean.len(), |p| name_start + p);
        let name = clean[name_start..name_end].to_string();
        if name.is_empty() {
            i = at + 3;
            continue;
        }
        // Body opens at the first `{` before the next `;` (a `;` first means a trait
        // method declaration with no body).
        let semi = clean[name_end..].find(';').map_or(clean.len(), |p| name_end + p);
        match clean[name_end..].find('{') {
            Some(p) if name_end + p < semi => {
                let open = name_end + p;
                let close = match_brace(clean, open);
                out.push((name, at, open..close));
                i = open + 1;
            }
            _ => i = name_end,
        }
    }
    out
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            rust_files(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    out.sort();
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root).unwrap_or(p).display().to_string().replace('\\', "/")
}

// ---------------------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------------------

fn rule_forbid_unsafe(root: &Path, findings: &mut Vec<Finding>) {
    for krate in STRUCTURE_CRATES {
        let lib = root.join(krate).join("src/lib.rs");
        let path = rel(root, &lib);
        match std::fs::read_to_string(&lib) {
            Ok(src) if src.lines().any(|l| l.trim() == "#![forbid(unsafe_code)]") => {}
            Ok(_) => findings.push(Finding {
                rule: "forbid-unsafe",
                path,
                line: 1,
                line_text: String::new(),
                message: "structure crate must carry #![forbid(unsafe_code)] at the top of lib.rs"
                    .into(),
            }),
            Err(e) => findings.push(Finding {
                rule: "forbid-unsafe",
                path,
                line: 1,
                line_text: String::new(),
                message: format!("cannot read structure crate lib.rs: {e}"),
            }),
        }
    }
}

fn rule_unprotected_deref(root: &Path, findings: &mut Vec<Finding>) {
    for krate in STRUCTURE_CRATES {
        let mut files = Vec::new();
        rust_files(&root.join(krate).join("src"), &mut files);
        for file in files {
            let Ok(src) = std::fs::read_to_string(&file) else { continue };
            let clean = strip_test_modules(&clean_source(&src));
            for (name, hdr, body) in functions(&clean) {
                let body_text = &clean[body.clone()];
                let loads = body_text.contains(".load(");
                let derefs = body_text.contains(".as_ref()");
                // A deref is interposed when the body protects the pointer
                // (announcement/pin schemes), hits an explicit checkpoint, or
                // carries a validation hook — the validate-after-read idiom of
                // version-based schemes (VBR), where staleness is detected by
                // re-checking the clock window instead of pre-announcing.
                let interposed = body_text.contains("protect")
                    || body_text.contains(".check(")
                    || body_text.contains("check()")
                    || body_text.contains("validate");
                if loads && derefs && !interposed {
                    let line = line_of(&clean, hdr);
                    findings.push(Finding {
                        rule: "unprotected-deref",
                        path: rel(root, &file),
                        line,
                        line_text: line_text(&src, line),
                        message: format!(
                            "fn `{name}` loads a link and dereferences without an interposed \
                             protect/check; validate the access or allowlist it with the \
                             quiescence contract documented"
                        ),
                    });
                }
            }
        }
    }
}

fn rule_hot_path_blocking(root: &Path, findings: &mut Vec<Finding>) {
    const BLOCKING_ITEMS: &[&str] = &["Mutex", "RwLock", "Condvar", "Barrier"];
    for krate in HOT_PATH_CRATES {
        let mut files = Vec::new();
        rust_files(&root.join(krate).join("src"), &mut files);
        for file in files {
            let Ok(src) = std::fs::read_to_string(&file) else { continue };
            let clean = strip_test_modules(&clean_source(&src));
            let mut flag = |line: usize, what: &str| {
                findings.push(Finding {
                    rule: "hot-path-blocking",
                    path: rel(root, &file),
                    line,
                    line_text: line_text(&src, line),
                    message: format!(
                        "{what}; move it off the hot path or allowlist the documented \
                         cold-path use"
                    ),
                });
            };
            // Imports of blocking primitives from std::sync, including brace-grouped
            // forms like `use std::sync::{Arc, Mutex};`.
            let mut from = 0;
            while let Some(p) = clean[from..].find("use ") {
                let start = from + p;
                let end = clean[start..].find(';').map_or(clean.len(), |s| start + s);
                let stmt = &clean[start..end];
                if stmt.contains("std::sync")
                    && BLOCKING_ITEMS.iter().any(|item| stmt.contains(item))
                {
                    flag(
                        line_of(&clean, start),
                        "blocking std::sync primitive imported on a hot-path crate",
                    );
                }
                from = end.max(start + 4);
            }
            // Fully-qualified inline uses outside `use` statements, and sleeps.
            for (needle, what) in [
                ("std::sync::Mutex", "blocking std mutex on a hot-path crate"),
                ("std::sync::RwLock", "blocking std rwlock on a hot-path crate"),
                ("thread::sleep", "sleep on a hot-path crate"),
            ] {
                let mut from = 0;
                while let Some(p) = clean[from..].find(needle) {
                    let off = from + p;
                    let line = line_of(&clean, off);
                    if !line_text(&src, line).trim_start().starts_with("use ") {
                        flag(line, what);
                    }
                    from = off + needle.len();
                }
            }
        }
    }
}

fn rule_must_use_guards(root: &Path, findings: &mut Vec<Finding>) {
    let mut files = Vec::new();
    rust_files(&root.join("crates/core/src"), &mut files);
    for file in files {
        let Ok(src) = std::fs::read_to_string(&file) else { continue };
        let clean = strip_test_modules(&clean_source(&src));
        for ty in GUARD_TYPES {
            let needle = format!("pub struct {ty}");
            let mut from = 0;
            while let Some(p) = clean[from..].find(&needle) {
                let off = from + p;
                from = off + needle.len();
                // The next char must end the identifier (avoid `Guarded` matching `Guard`).
                let next = clean.as_bytes().get(off + needle.len()).copied().unwrap_or(b' ');
                if next.is_ascii_alphanumeric() || next == b'_' {
                    continue;
                }
                let line = line_of(&clean, off);
                // Scan the preceding attribute block (up to 40 lines of attrs / docs,
                // which are blanked in `clean` — so look at the raw source).
                let preceding: Vec<&str> = src.lines().take(line.saturating_sub(1)).collect();
                let has_must_use = preceding
                    .iter()
                    .rev()
                    .take(40)
                    .take_while(|l| {
                        let t = l.trim();
                        t.starts_with("#[")
                            || t.starts_with("///")
                            || t.is_empty()
                            || t.starts_with("//")
                    })
                    .any(|l| l.trim().starts_with("#[must_use"));
                if !has_must_use {
                    findings.push(Finding {
                        rule: "must-use-guards",
                        path: rel(root, &file),
                        line,
                        line_text: line_text(&src, line),
                        message: format!(
                            "RAII guard type `{ty}` must be #[must_use] (dropping it \
                             silently ends the protection it represents)"
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------------------

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let gate = args.iter().any(|a| a == "--gate");
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut allow_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                if let Some(v) = it.next() {
                    root = PathBuf::from(v);
                }
            }
            "--allow" => allow_path = it.next().map(PathBuf::from),
            "--gate" => {}
            other => {
                eprintln!("smr-lint: unknown argument `{other}`");
                eprintln!("usage: smr-lint [--gate] [--root DIR] [--allow FILE]");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.canonicalize().unwrap_or(root);
    let allow_path = allow_path.unwrap_or_else(|| root.join("tools/smr-lint/allowlist.txt"));
    let allows =
        std::fs::read_to_string(&allow_path).map(|t| parse_allowlist(&t)).unwrap_or_default();

    let mut findings = Vec::new();
    rule_forbid_unsafe(&root, &mut findings);
    rule_unprotected_deref(&root, &mut findings);
    rule_hot_path_blocking(&root, &mut findings);
    rule_must_use_guards(&root, &mut findings);

    let (kept, waived): (Vec<_>, Vec<_>) =
        findings.into_iter().partition(|f| !suppressed(f, &allows));
    if !waived.is_empty() {
        println!("smr-lint: {} finding(s) waived by {}", waived.len(), rel(&root, &allow_path));
    }
    for f in &kept {
        println!("{f}");
    }
    if kept.is_empty() {
        println!("smr-lint: clean ({} rule families)", 4);
        ExitCode::SUCCESS
    } else {
        println!("smr-lint: {} finding(s)", kept.len());
        if gate {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleaning_blanks_comments_strings_and_chars_but_keeps_lifetimes() {
        let src = r##"fn f<'a>(x: &'a str) { // protect in a comment
            let s = "protect in a string";
            let c = 'p';
            let r = r#"protect raw"#;
            real_protect();
        }"##;
        let clean = clean_source(src);
        assert_eq!(clean.matches("protect").count(), 1, "only the real call survives");
        assert!(clean.contains("'a"), "lifetimes are not char literals");
        assert_eq!(clean.len(), src.len(), "byte offsets preserved");
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let clean = clean_source("a /* x /* y */ z */ b");
        assert!(clean.contains('a') && clean.contains('b'));
        assert!(!clean.contains('y') && !clean.contains('z'));
    }

    #[test]
    fn function_extraction_matches_braces() {
        let src = "fn outer() { if x { y(); } }\nfn other() -> bool { true }";
        let fns = functions(src);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].0, "outer");
        assert_eq!(fns[1].0, "other");
    }

    #[test]
    fn test_modules_are_stripped() {
        let src = "fn shipped() {}\n#[cfg(test)]\nmod tests { fn helper() { bad(); } }";
        let out = strip_test_modules(&clean_source(src));
        assert!(out.contains("shipped"));
        assert!(!out.contains("bad()"));
    }

    #[test]
    fn allowlist_matches_rule_path_and_content() {
        let allows = parse_allowlist(
            "hot-path-blocking pagepool/src/store.rs Mutex # cold path\n# comment line\n",
        );
        assert_eq!(allows.len(), 1);
        let f = Finding {
            rule: "hot-path-blocking",
            path: "crates/pagepool/src/store.rs".into(),
            line: 44,
            line_text: "pages: Mutex<Vec<PageMeta>>,".into(),
            message: String::new(),
        };
        assert!(suppressed(&f, &allows));
        let other = Finding {
            rule: "hot-path-blocking",
            path: "crates/core/src/guard.rs".into(),
            line: 1,
            line_text: "Mutex".into(),
            message: String::new(),
        };
        assert!(!suppressed(&other, &allows));
    }
}

//! The Record Manager abstraction in action: the *same* data structure code runs under
//! all eight reclamation schemes — only type parameters change (paper, Section 6).
//!
//! ```text
//! cargo run --release --example reclaimer_swap
//! ```

use std::sync::Arc;
use std::time::Instant;

use debra_repro::debra::{Allocator, Debra, DebraPlus, Pool, Reclaimer, RecordManager};
use debra_repro::lockfree_ds::{ConcurrentMap, HarrisMichaelList, ListNode};
use debra_repro::smr_alloc::{SystemAllocator, ThreadPool};
use debra_repro::smr_baselines::{ClassicEbr, HazardPointers, NoReclaim, ThreadScanLite};
use debra_repro::smr_ibr::Ibr;
use debra_repro::smr_pagepool::{PageAllocator, PagePool};
use debra_repro::smr_vbr::Vbr;

type Node = ListNode<u64, u64>;

/// The benchmark body is written once, generically over the reclaimer and the
/// allocation pipeline.  Swapping the memory reclamation scheme is a one-line change
/// at the call site in `main` — VBR composes with the type-stable page pool
/// (its registration requirement), everything else with the malloc-backed pool.
fn run<R: Reclaimer<Node>, P: Pool<Node>, A: Allocator<Node>>(label: &str) {
    let threads = 3;
    let manager: Arc<RecordManager<Node, R, P, A>> = Arc::new(RecordManager::new(threads));
    let list = Arc::new(HarrisMichaelList::new(Arc::clone(&manager)));

    let start = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let list = Arc::clone(&list);
            scope.spawn(move || {
                let mut handle = list.register().expect("register");
                let mut x = 0x9E3779B97F4A7C15u64 ^ tid as u64;
                for _ in 0..40_000u64 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let key = (x >> 33) % 512;
                    match x % 3 {
                        0 => {
                            list.insert(&mut handle, key, key);
                        }
                        1 => {
                            list.remove(&mut handle, &key);
                        }
                        _ => {
                            list.contains(&mut handle, &key);
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let stats = manager.reclaimer().stats();
    println!(
        "{label:10} | {:6.1} ms | retired {:>8} | reclaimed {:>8} | still in limbo {:>6}",
        elapsed.as_secs_f64() * 1e3,
        stats.retired,
        stats.reclaimed,
        stats.pending
    );
}

fn run_malloc<R: Reclaimer<Node>>(label: &str) {
    run::<R, ThreadPool<Node>, SystemAllocator<Node>>(label);
}

fn main() {
    println!("scheme     | time      | retired         | reclaimed          | limbo");
    run_malloc::<NoReclaim<Node>>("None");
    run_malloc::<ClassicEbr<Node>>("EBR");
    run_malloc::<HazardPointers<Node>>("HP");
    run_malloc::<ThreadScanLite<Node>>("ThreadScan");
    run_malloc::<Ibr<Node>>("IBR");
    run_malloc::<Debra<Node>>("DEBRA");
    run_malloc::<DebraPlus<Node>>("DEBRA+");
    run::<Vbr<Node>, PagePool<Node>, PageAllocator<Node>>("VBR");
    println!("\nSame list code, eight reclamation schemes — only the type parameters changed.");
}

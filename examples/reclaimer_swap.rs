//! The Record Manager abstraction in action: the *same* data structure code runs under
//! six different reclamation schemes — only a type parameter changes (paper, Section 6).
//!
//! ```text
//! cargo run --release --example reclaimer_swap
//! ```

use std::sync::Arc;
use std::time::Instant;

use debra_repro::debra::{Debra, DebraPlus, Reclaimer, RecordManager};
use debra_repro::lockfree_ds::{ConcurrentMap, HarrisMichaelList, ListNode};
use debra_repro::smr_alloc::{SystemAllocator, ThreadPool};
use debra_repro::smr_baselines::{ClassicEbr, HazardPointers, NoReclaim};
use debra_repro::smr_ibr::Ibr;

type Node = ListNode<u64, u64>;

/// The benchmark body is written once, generically over the reclaimer.  Swapping the
/// memory reclamation scheme is a one-line change at the call site in `main`.
fn run<R: Reclaimer<Node>>(label: &str) {
    let threads = 3;
    let manager: Arc<RecordManager<Node, R, ThreadPool<Node>, SystemAllocator<Node>>> =
        Arc::new(RecordManager::new(threads));
    let list = Arc::new(HarrisMichaelList::new(Arc::clone(&manager)));

    let start = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let list = Arc::clone(&list);
            scope.spawn(move || {
                let mut handle = list.register().expect("register");
                let mut x = 0x9E3779B97F4A7C15u64 ^ tid as u64;
                for _ in 0..40_000u64 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let key = (x >> 33) % 512;
                    match x % 3 {
                        0 => {
                            list.insert(&mut handle, key, key);
                        }
                        1 => {
                            list.remove(&mut handle, &key);
                        }
                        _ => {
                            list.contains(&mut handle, &key);
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let stats = manager.reclaimer().stats();
    println!(
        "{label:7} | {:6.1} ms | retired {:>8} | reclaimed {:>8} | still in limbo {:>6}",
        elapsed.as_secs_f64() * 1e3,
        stats.retired,
        stats.reclaimed,
        stats.pending
    );
}

fn main() {
    println!("scheme  | time      | retired         | reclaimed          | limbo");
    run::<NoReclaim<Node>>("None");
    run::<ClassicEbr<Node>>("EBR");
    run::<HazardPointers<Node>>("HP");
    run::<Ibr<Node>>("IBR");
    run::<Debra<Node>>("DEBRA");
    run::<DebraPlus<Node>>("DEBRA+");
    println!("\nSame list code, six reclamation schemes — only the type parameter changed.");
}

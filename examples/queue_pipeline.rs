//! A producer/consumer pipeline over the lock-free Michael–Scott queue, protected by
//! DEBRA+ — the repository's first **non-map** workload on the safe guard API.
//!
//! Producers push tagged work items; consumers pop and check them.  Every successful
//! pop retires the queue's old sentinel node, so — unlike any map mix — garbage
//! generation tracks raw throughput: this is the workload shape that stresses a
//! reclamation scheme hardest, and the stats printed at the end show the retire →
//! reclaim pipeline keeping up.
//!
//! As everywhere in this workspace, the memory-management strategy is one type line:
//! swap `DebraPlus` for `HazardPointers` (the dequeue's anchored two-shield window is
//! what makes that sound — see `smr-queue`'s crate docs), `Ibr`, `Debra`, … and nothing
//! else changes.
//!
//! ```text
//! cargo run --release --example queue_pipeline
//! ```

use debra_repro::debra::{DebraPlus, Domain, Reclaimer};
use debra_repro::lockfree_ds::ConcurrentBag;
use debra_repro::smr_alloc::{SystemAllocator, ThreadPool};
use debra_repro::smr_queue::{MsQueue, QueueNode};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

type Node = QueueNode<u64>;
// One line decides the whole memory management strategy of the queue:
type QueueDomain = Domain<Node, DebraPlus<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
type Queue = MsQueue<u64, DebraPlus<Node>, ThreadPool<Node>, SystemAllocator<Node>>;

const PRODUCERS: usize = 2;
const CONSUMERS: usize = 2;
const ITEMS_PER_PRODUCER: u64 = 50_000;

fn main() {
    let domain: QueueDomain = Domain::new(PRODUCERS + CONSUMERS);
    let queue: Arc<Queue> = Arc::new(MsQueue::in_domain(domain));
    let consumed = Arc::new(AtomicU64::new(0));
    let total = PRODUCERS as u64 * ITEMS_PER_PRODUCER;

    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS as u64 {
            let queue = Arc::clone(&queue);
            scope.spawn(move || {
                let mut handle = queue.register().expect("lease a producer slot");
                for i in 0..ITEMS_PER_PRODUCER {
                    queue.push(&mut handle, (p << 32) | i);
                }
            });
        }
        for _ in 0..CONSUMERS {
            let queue = Arc::clone(&queue);
            let consumed = Arc::clone(&consumed);
            scope.spawn(move || {
                let mut handle = queue.register().expect("lease a consumer slot");
                // Per-producer FIFO check: within this consumer's stream, each
                // producer's sequence numbers must only increase.
                let mut last_seq = [None::<u64>; PRODUCERS];
                while consumed.load(Ordering::Relaxed) < total {
                    match queue.pop(&mut handle) {
                        Some(item) => {
                            let (p, seq) = ((item >> 32) as usize, item & 0xFFFF_FFFF);
                            if let Some(prev) = last_seq[p] {
                                assert!(seq > prev, "FIFO violated for producer {p}");
                            }
                            last_seq[p] = Some(seq);
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        None => std::thread::yield_now(),
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();

    assert_eq!(consumed.load(Ordering::SeqCst), total, "every item consumed exactly once");
    let stats = queue.manager().reclaimer().stats();
    println!("pipeline transferred {total} items in {:.3}s", elapsed.as_secs_f64());
    println!("pair rate           : {:.3} M items/s", total as f64 / elapsed.as_secs_f64() / 1.0e6);
    println!("records retired     : {}", stats.retired);
    println!("records reclaimed   : {}", stats.reclaimed);
    println!("records in limbo    : {}", stats.pending);
    println!("neutralizations     : {}", stats.neutralized);
    assert!(stats.retired >= total, "every successful pop retires a sentinel");
    println!("queue_pipeline finished: per-producer FIFO held across {CONSUMERS} consumers");
}

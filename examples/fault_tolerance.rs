//! Fault tolerance demonstration (the heart of DEBRA+, paper Section 5).
//!
//! One thread starts a data-structure operation and then stalls *inside* it, simulating a
//! descheduled or crashed process.  Under DEBRA the stalled thread pins the epoch and the
//! number of unreclaimed records grows with every retire; under DEBRA+ the other threads
//! neutralize the stalled thread with a signal and reclamation continues, keeping the
//! number of unreclaimed records bounded (the effect behind Figure 9, right).
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use debra_repro::debra::{CountingSink, Debra, DebraPlus, Reclaimer, ReclaimerThread};

/// Drives one reclaimer with a stalled second thread and reports the peak number of
/// retired-but-unreclaimed records.
fn run<R>(label: &str) -> u64
where
    R: Reclaimer<u64>,
{
    let global = Arc::new(R::new(2));
    let stop = Arc::new(AtomicBool::new(false));
    let started = Arc::new(AtomicBool::new(false));

    // The "stalled" worker: leaves its quiescent state and then spins, periodically
    // checking whether it has been neutralized (as any DEBRA+-integrated operation would).
    let staller = {
        let global = Arc::clone(&global);
        let stop = Arc::clone(&stop);
        let started = Arc::clone(&started);
        std::thread::spawn(move || {
            let mut thread = R::register(&global, 1).expect("register staller");
            let mut sink = CountingSink::default();
            let _ = thread.leave_qstate(&mut sink);
            started.store(true, Ordering::Release);
            while !stop.load(Ordering::Acquire) {
                if thread.check().is_err() {
                    // Neutralized: run the (trivial) recovery protocol and start over.
                    thread.begin_recovery();
                    let _ = thread.leave_qstate(&mut sink);
                }
                // Yield, don't just spin: single-core hosts need the other threads to run.
                std::thread::yield_now();
            }
            thread.enter_qstate();
        })
    };
    while !started.load(Ordering::Acquire) {
        std::thread::yield_now();
    }

    // The productive worker keeps retiring records (as a data structure under a delete-heavy
    // workload would).
    struct FreeSink;
    impl debra_repro::debra::ReclaimSink<u64> for FreeSink {
        fn accept(&mut self, record: NonNull<u64>) {
            // SAFETY: records are leaked boxes reclaimed exactly once.
            unsafe { drop(Box::from_raw(record.as_ptr())) }
        }
    }
    let mut worker = R::register(&global, 0).expect("register worker");
    let mut sink = FreeSink;
    let mut peak_pending = 0u64;
    for i in 0..200_000u64 {
        let _ = worker.leave_qstate(&mut sink);
        let record = NonNull::from(Box::leak(Box::new(i)));
        // SAFETY: the record was never published; retiring it is trivially valid.
        unsafe { worker.retire(record, &mut sink) };
        worker.enter_qstate();
        if i % 4096 == 0 {
            peak_pending = peak_pending.max(global.stats().pending);
        }
    }
    peak_pending = peak_pending.max(global.stats().pending);

    stop.store(true, Ordering::Release);
    staller.join().unwrap();
    let stats = global.stats();
    println!(
        "{label:7} | peak unreclaimed records: {:>8} | reclaimed: {:>8} | neutralizations: {:>4}",
        peak_pending, stats.reclaimed, stats.neutralized
    );
    // Give stragglers a home before the global is dropped.
    drop(worker);
    for r in global.drain_orphans() {
        // SAFETY: orphaned test records are leaked boxes owned solely by us now.
        unsafe { drop(Box::from_raw(r.as_ptr())) };
    }
    std::thread::sleep(Duration::from_millis(10));
    peak_pending
}

fn main() {
    println!("A thread stalls inside an operation while another thread retires 200k records.\n");
    let debra_peak = run::<Debra<u64>>("DEBRA");
    let plus_peak = run::<DebraPlus<u64>>("DEBRA+");
    println!(
        "\nDEBRA's garbage grew to {debra_peak} records (unbounded in the limit); \
         DEBRA+ kept it at {plus_peak} thanks to neutralization — the paper reports a 94% \
         reduction in peak memory for the same reason (Figure 9, right)."
    );
}

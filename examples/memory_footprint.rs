//! Memory footprint comparison (the paper's Figure 9, right, in miniature).
//!
//! Runs the same update-heavy BST workload under several reclamation schemes with the bump
//! allocator and reports how much record memory each one had to allocate: schemes that
//! recycle records promptly (DEBRA, DEBRA+) allocate far less than performing no
//! reclamation, and hazard pointers sit in between.
//!
//! ```text
//! cargo run --release --example memory_footprint
//! ```

use smr_workloads::experiments::{run_config, AllocatorKind, ReclaimerKind, StructureKind};
use smr_workloads::workload::{KeyDistribution, OperationMix, WorkloadConfig};

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get().min(4)).unwrap_or(2);
    let cfg = WorkloadConfig {
        threads,
        key_range: 4_096,
        mix: OperationMix::UPDATE_HEAVY,
        distribution: KeyDistribution::Uniform,
        duration_ms: 400,
        prefill: true,
        allocator: AllocatorKind::BumpWithPool,
        latency: false,
        laggard_stall_ms: 0,
    };
    println!(
        "BST, {} threads, keyrange {}, {} for {} ms (bump allocator + pool)\n",
        cfg.threads,
        cfg.key_range,
        cfg.mix.label(),
        cfg.duration_ms
    );
    println!("scheme  | throughput (Mops/s) | bytes allocated for records | records allocated");
    for reclaimer in [
        ReclaimerKind::None,
        ReclaimerKind::Ebr,
        ReclaimerKind::HazardPointers,
        ReclaimerKind::Debra,
        ReclaimerKind::DebraPlus,
    ] {
        let row = run_config(StructureKind::Bst, reclaimer, &cfg, 99);
        println!(
            "{:7} | {:19.3} | {:27} | {:17}",
            reclaimer.name(),
            row.result.throughput_mops,
            row.result.allocated_bytes,
            row.result.allocated_records
        );
    }
    println!(
        "\nLower allocation with comparable throughput is the benefit DEBRA's pool reuse buys."
    );
}

//! The lock-free hash map under hot-key contention: uniform vs. Zipfian keys, swept
//! across every reclamation scheme.
//!
//! Under a Zipfian key distribution most operations funnel into a handful of bucket
//! chains, so removed-but-unreclaimable nodes concentrate exactly where every thread is
//! traversing — the regime in which reclamation schemes actually separate.  This example
//! runs the same update-heavy workload twice per scheme (uniform, then Zipf 0.99) and
//! prints throughput plus the retire/reclaim counters side by side.
//!
//! ```text
//! cargo run --release --example hashmap_zipf
//! ```

use debra_repro::smr_workloads::experiments::{
    run_config, AllocatorKind, ReclaimerKind, StructureKind,
};
use debra_repro::smr_workloads::workload::{KeyDistribution, OperationMix, WorkloadConfig};

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get().min(4)).unwrap_or(2);
    println!(
        "Lock-free hash map, {} threads, keyrange 4096, {} for 300 ms (bump allocator + pool)\n",
        threads,
        OperationMix::UPDATE_HEAVY.label(),
    );
    println!("scheme     | dist     | Mops/s   | retired    | reclaimed  | neutralized");
    println!("-----------|----------|----------|------------|------------|------------");
    for reclaimer in ReclaimerKind::ALL {
        for distribution in [KeyDistribution::Uniform, KeyDistribution::ZIPF_DEFAULT] {
            let cfg = WorkloadConfig {
                threads,
                key_range: 4_096,
                mix: OperationMix::UPDATE_HEAVY,
                distribution,
                duration_ms: 300,
                prefill: true,
                allocator: AllocatorKind::BumpWithPool,
                latency: false,
                laggard_stall_ms: 0,
            };
            let row = run_config(StructureKind::HashMap, reclaimer, &cfg, 0x5EED);
            println!(
                "{:10} | {:8} | {:8.3} | {:10} | {:10} | {:10}",
                reclaimer.name(),
                distribution.label(),
                row.result.throughput_mops,
                row.result.reclaimer.retired,
                row.result.reclaimer.reclaimed,
                row.result.reclaimer.neutralized,
            );
        }
    }
    println!(
        "\nThe Zipfian rows churn a few hot chains: retired counts concentrate there, and\n\
         schemes whose reclamation stalls behind slow readers show it first in these rows."
    );
}

//! Quickstart: a concurrent map protected by DEBRA.
//!
//! Builds the lock-free external BST with the DEBRA reclaimer, a per-thread object pool and
//! the system allocator, then hammers it from several threads.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use debra_repro::debra::{Debra, Reclaimer, RecordManager};
use debra_repro::lockfree_ds::{BstNode, ConcurrentMap, ExternalBst};
use debra_repro::smr_alloc::{SystemAllocator, ThreadPool};

type Node = BstNode<u64, u64>;
// The whole memory-management strategy of the data structure is this one line:
type Manager = RecordManager<Node, Debra<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
type Map = ExternalBst<u64, u64, Debra<Node>, ThreadPool<Node>, SystemAllocator<Node>>;

fn main() {
    let threads = 4;
    let manager: Arc<Manager> = Arc::new(RecordManager::new(threads));
    let map: Arc<Map> = Arc::new(ExternalBst::new(Arc::clone(&manager)));

    std::thread::scope(|scope| {
        for tid in 0..threads {
            let map = Arc::clone(&map);
            scope.spawn(move || {
                // Each thread registers once and reuses its handle for every operation.
                let mut handle = map.register(tid).expect("register thread");
                let base = (tid as u64) * 10_000;
                for i in 0..10_000u64 {
                    map.insert(&mut handle, base + i, i);
                }
                for i in (0..10_000u64).step_by(2) {
                    map.remove(&mut handle, &(base + i));
                }
                for i in 0..10_000u64 {
                    let expect = i % 2 == 1;
                    assert_eq!(map.contains(&mut handle, &(base + i)), expect);
                }
            });
        }
    });

    let stats = manager.reclaimer().stats();
    println!("operations started : {}", stats.operations);
    println!("records retired    : {}", stats.retired);
    println!("records reclaimed  : {}", stats.reclaimed);
    println!("records in limbo   : {}", stats.pending);
    println!("epochs advanced    : {}", stats.epochs_advanced);
    println!("quickstart finished: the map holds the odd keys of each thread's range");
}

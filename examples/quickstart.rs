//! Quickstart: a concurrent map through the **safe guard API**, protected by DEBRA.
//!
//! Builds the lock-free hash map in a reclamation [`Domain`], hammers it from several
//! threads — no `tid` bookkeeping, no `unsafe`, no manual protect/unprotect pairs — and
//! then shows the guard layer directly: pinning, allocation and recycling.
//!
//! The whole memory-management strategy is still a single type line: swap `Debra` for
//! `HazardPointers`, `Ibr`, `ThreadScanLite`, … and nothing else changes (see
//! `examples/reclaimer_swap.rs` for that tour).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use debra_repro::debra::{Debra, Domain, Reclaimer};
use debra_repro::lockfree_ds::ConcurrentMap;
use debra_repro::smr_alloc::{SystemAllocator, ThreadPool};
use debra_repro::smr_hashmap::{HashMapNode, LockFreeHashMap};
use std::sync::Arc;

type Node = HashMapNode<u64, u64>;
// One line decides the whole memory management strategy of the data structure:
type MapDomain = Domain<Node, Debra<Node>, ThreadPool<Node>, SystemAllocator<Node>>;
type Map = LockFreeHashMap<u64, u64, Debra<Node>, ThreadPool<Node>, SystemAllocator<Node>>;

fn main() {
    let threads = 4;
    // One slot per worker; the main thread never leases from this domain (statistics are
    // read straight off the manager, and the guard demo below uses its own tiny domain).
    let domain: MapDomain = Domain::new(threads);
    let map: Arc<Map> = Arc::new(LockFreeHashMap::in_domain(domain.clone(), 256));

    std::thread::scope(|scope| {
        for tid in 0..threads {
            let map = Arc::clone(&map);
            scope.spawn(move || {
                // Each thread leases a handle once (the domain picks a free slot) and
                // reuses it for every operation; the slot is recycled when the thread
                // exits.
                let mut handle = map.domain().try_handle().expect("lease a thread slot");
                let base = (tid as u64) * 10_000;
                for i in 0..10_000u64 {
                    map.insert(&mut handle, base + i, i);
                }
                for i in (0..10_000u64).step_by(2) {
                    map.remove(&mut handle, &(base + i));
                }
                for i in 0..10_000u64 {
                    let expect = i % 2 == 1;
                    assert_eq!(map.contains(&mut handle, &(base + i)), expect);
                }
            });
        }
    });

    // The guard layer, hands on (a scratch domain over plain `u64` records): a pin
    // brackets one operation (leave/enter quiescent state), and allocation hands out
    // `Owned` records that are recycled — not leaked — when they are never published.
    let scratch: Domain<u64, Debra<u64>, ThreadPool<u64>, SystemAllocator<u64>> = Domain::new(1);
    let guard = scratch.pin();
    let record = guard.alloc(42u64);
    assert_eq!(*record, 42);
    guard.discard(record);
    drop(guard);

    let stats = map.manager().reclaimer().stats();
    println!("operations started : {}", stats.operations);
    println!("records retired    : {}", stats.retired);
    println!("records reclaimed  : {}", stats.reclaimed);
    println!("records in limbo   : {}", stats.pending);
    println!("epochs advanced    : {}", stats.epochs_advanced);
    println!("quickstart finished: the map holds the odd keys of each thread's range");
}
